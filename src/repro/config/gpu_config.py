"""GPU hardware configuration.

The fields mirror Table II of the paper ("Baseline simulator configuration
parameters") plus the knobs the evaluation sweeps: collector units per
sub-core, register-file banks per sub-core, sub-core count (1 == a
fully-connected/monolithic SM), warp-scheduler policy, sub-core assignment
policy, and the RBA score-update latency.

Configurations are plain frozen dataclasses so a design point is hashable and
printable; use :func:`dataclasses.replace` (re-exported as
:meth:`GPUConfig.replace`) to derive variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


class SchedulerPolicy:
    """Warp-scheduler policy names accepted by ``GPUConfig.scheduler``."""

    LRR = "lrr"
    GTO = "gto"
    RBA = "rba"
    BANK_STEALING = "bank_stealing"
    TWO_LEVEL = "two_level"

    ALL = (LRR, GTO, RBA, BANK_STEALING, TWO_LEVEL)


class AssignmentPolicy:
    """Sub-core warp-assignment policy names for ``GPUConfig.assignment``."""

    ROUND_ROBIN = "rr"
    SRR = "srr"
    SHUFFLE = "shuffle"
    HASH_TABLE = "hash_table"

    ALL = (ROUND_ROBIN, SRR, SHUFFLE, HASH_TABLE)


@dataclass(frozen=True)
class MemoryConfig:
    """Latency/capacity parameters for the simplified memory hierarchy."""

    l1_size_bytes: int = 128 * 1024
    l1_line_bytes: int = 128
    l1_ways: int = 4
    l1_hit_latency: int = 28
    l1_mshrs: int = 64

    l2_size_bytes: int = 6 * 1024 * 1024
    l2_line_bytes: int = 128
    l2_ways: int = 24
    l2_hit_latency: int = 190
    l2_mshrs: int = 128

    dram_latency: int = 320
    dram_bytes_per_cycle: int = 64
    #: Independent HBM channels; 1 keeps the single-channel reproduction
    #: configuration, larger values scale bandwidth for multi-SM studies.
    dram_channels: int = 1

    shared_mem_size_bytes: int = 96 * 1024
    shared_mem_banks: int = 32


@dataclass(frozen=True)
class GPUConfig:
    """Full design point for a simulated GPU.

    The defaults model the paper's baseline: an NVIDIA Volta V100 with
    80 SMs, 4 sub-cores per SM, 2 register-file banks and 2 collector units
    per sub-core, GTO warp scheduling and round-robin sub-core assignment.
    """

    name: str = "volta-v100"

    # -- chip level -------------------------------------------------------
    num_sms: int = 80

    # -- SM partitioning ---------------------------------------------------
    #: Number of sub-cores each SM is partitioned into.  ``1`` models the
    #: hypothetical fully-connected (monolithic) SM of Fig. 1: all issue
    #: slots, collector units and register banks live in one shared pool.
    subcores_per_sm: int = 4
    #: Warp-instruction issue slots per sub-core per cycle.
    issue_width: int = 1

    # -- occupancy limits --------------------------------------------------
    max_warps_per_sm: int = 64
    max_ctas_per_sm: int = 32
    registers_per_sm: int = 65536 * 4      # 64 KB per sub-core x 4
    shared_mem_per_sm: int = 96 * 1024

    # -- register file / operand collector ---------------------------------
    #: Register-file banks owned by each sub-core (Volta/Ampere: 2).
    rf_banks_per_subcore: int = 2
    #: Collector units per sub-core (validated at 2 for the V100 in Sec. V).
    collector_units_per_subcore: int = 2
    #: Reads a single bank can grant per cycle.
    bank_read_ports: int = 1
    #: Register→bank mapping policy name (see :mod:`repro.regalloc`).
    bank_mapping: str = "warp_swizzle"

    # -- scheduling ---------------------------------------------------------
    scheduler: str = SchedulerPolicy.GTO
    assignment: str = AssignmentPolicy.ROUND_ROBIN
    #: Cycles by which RBA scores lag the true arbitration queue state
    #: (Sec. VI-B4 sweeps 0..20).
    rba_score_latency: int = 0
    #: Entries in the hashed-assignment hash-function table (Sec. IV-B3).
    hash_table_entries: int = 4
    #: Seed for the Shuffle assignment's permutations.
    assignment_seed: int = 0xC0FFEE

    # -- dynamic warp migration (the work-stealing design of Sec. VII) -------
    #: Enable dynamic warp migration between sub-cores: an idle sub-core
    #: steals a runnable warp from the most loaded one.  The paper argues
    #: this is prohibitively expensive in hardware; the simulator supports
    #: it as an upper-bound study (see experiments.work_stealing_study).
    work_stealing: bool = False
    #: Cycles a migrated warp is unavailable while its register state
    #: transfers between sub-core register files.
    migration_latency: int = 64

    # -- checking -----------------------------------------------------------
    #: Install the runtime invariant sanitizer (repro.analysis): per-cycle
    #: conservation checks across register allocation, collector units,
    #: arbitration queues and warp/CTA lifecycles, raising a structured
    #: ``InvariantViolation`` on the first inconsistency.  Read-only: a
    #: sanitized run's stats are byte-identical to an unsanitized run's.
    sanitize: bool = False

    # -- observability -------------------------------------------------------
    #: Accumulate the per-sub-core stall-attribution taxonomy
    #: (:mod:`repro.obs.stall`): every scheduler issue slot of every cycle
    #: lands in exactly one bucket, reported via ``SMStats.stall_cycles``
    #: and rendered by ``metrics.profile_report``.  Off by default; when
    #: off, collected stats are byte-identical to pre-observability
    #: behaviour.  Enabled implicitly by ``python -m repro --trace``.
    stall_attribution: bool = False

    # -- execution units per sub-core ---------------------------------------
    fp32_lanes: int = 16
    int_lanes: int = 16
    sfu_lanes: int = 4
    tensor_units: int = 1
    ldst_units: int = 8

    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        if self.subcores_per_sm < 1:
            raise ValueError("subcores_per_sm must be >= 1")
        if self.rf_banks_per_subcore < 1:
            raise ValueError("rf_banks_per_subcore must be >= 1")
        if self.collector_units_per_subcore < 1:
            raise ValueError("collector_units_per_subcore must be >= 1")
        if self.max_warps_per_sm % self.subcores_per_sm != 0:
            raise ValueError(
                "max_warps_per_sm must divide evenly across sub-cores "
                f"({self.max_warps_per_sm} warps, {self.subcores_per_sm} sub-cores)"
            )
        if self.scheduler not in SchedulerPolicy.ALL:
            raise ValueError(f"unknown scheduler policy: {self.scheduler!r}")
        if self.assignment not in AssignmentPolicy.ALL:
            raise ValueError(f"unknown assignment policy: {self.assignment!r}")
        if self.rba_score_latency < 0:
            raise ValueError("rba_score_latency must be >= 0")
        if self.migration_latency < 0:
            raise ValueError("migration_latency must be >= 0")
        if self.shared_mem_per_sm > self.memory.shared_mem_size_bytes:
            raise ValueError(
                "shared_mem_per_sm exceeds the shared-memory scratchpad "
                f"({self.shared_mem_per_sm} > {self.memory.shared_mem_size_bytes} bytes)"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def is_fully_connected(self) -> bool:
        """True when the SM is modelled as a single monolithic scheduler domain."""
        return self.subcores_per_sm == 1

    @property
    def max_warps_per_subcore(self) -> int:
        return self.max_warps_per_sm // self.subcores_per_sm

    @property
    def total_rf_banks(self) -> int:
        """Register-file banks across the whole SM."""
        return self.rf_banks_per_subcore * self.subcores_per_sm

    @property
    def total_collector_units(self) -> int:
        return self.collector_units_per_subcore * self.subcores_per_sm

    def replace(self, **changes) -> "GPUConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """Multi-line human-readable summary (Table II style)."""
        rows = [
            ("Number of SMs", self.num_sms),
            ("Sub-Cores per SM", self.subcores_per_sm),
            ("Warp Scheduler Algorithm", self.scheduler),
            ("Sub-Core Assignment", self.assignment),
            ("Max Warps per SM", self.max_warps_per_sm),
            ("RF Banks per Sub-core", self.rf_banks_per_subcore),
            ("CUs per Sub-core", self.collector_units_per_subcore),
            ("Shared Memory Banks", self.memory.shared_mem_banks),
            ("L1 / Shared Memory Cache", f"{self.memory.l1_size_bytes // 1024} KB"),
            ("L2 Cache", f"{self.memory.l2_ways}-way "
                         f"{self.memory.l2_size_bytes // (1024 * 1024)}MB"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
