"""Hardware configuration dataclasses and named presets."""

from .gpu_config import AssignmentPolicy, GPUConfig, MemoryConfig, SchedulerPolicy
from .presets import (
    PRESETS,
    ampere_a100,
    bank_stealing,
    fully_connected,
    kepler,
    rba,
    shuffle,
    shuffle_rba,
    srr,
    tpch_config,
    volta_v100,
    with_cus,
)

__all__ = [
    "AssignmentPolicy",
    "GPUConfig",
    "MemoryConfig",
    "SchedulerPolicy",
    "PRESETS",
    "ampere_a100",
    "bank_stealing",
    "fully_connected",
    "kepler",
    "rba",
    "shuffle",
    "shuffle_rba",
    "srr",
    "tpch_config",
    "volta_v100",
    "with_cus",
]
