"""Named configuration presets used throughout the evaluation.

Each function returns a fresh :class:`~repro.config.gpu_config.GPUConfig`.
The Volta V100 preset is the paper's baseline (Table II); the Kepler and
Ampere presets exist for the Fig. 3 hardware microbenchmark study; the
fully-connected preset is the hypothetical monolithic SM of Fig. 1.
"""

from __future__ import annotations

from .gpu_config import AssignmentPolicy, GPUConfig, MemoryConfig, SchedulerPolicy


def volta_v100(**overrides) -> GPUConfig:
    """The paper's baseline: V100, 4 sub-cores, 2 banks + 2 CUs per sub-core."""
    return GPUConfig(name="volta-v100").replace(**overrides) if overrides else GPUConfig(name="volta-v100")


def ampere_a100(**overrides) -> GPUConfig:
    """Ampere A100 model: same 4-way partitioning, more SMs."""
    cfg = GPUConfig(
        name="ampere-a100",
        num_sms=108,
        subcores_per_sm=4,
        rf_banks_per_subcore=2,
        collector_units_per_subcore=2,
    )
    return cfg.replace(**overrides) if overrides else cfg


def kepler(**overrides) -> GPUConfig:
    """Kepler model: a monolithic (unpartitioned) SM.

    Kepler SMXs had four schedulers but no hard partitioning; warps could use
    any execution resource.  We model it as a fully-connected SM with the
    aggregate bank/CU pool and 4 issue slots per cycle.
    """
    cfg = GPUConfig(
        name="kepler",
        num_sms=15,
        subcores_per_sm=1,
        issue_width=4,
        rf_banks_per_subcore=8,
        collector_units_per_subcore=8,
        fp32_lanes=64,
        int_lanes=64,
        sfu_lanes=16,
        tensor_units=0,
        ldst_units=32,
    )
    return cfg.replace(**overrides) if overrides else cfg


def fully_connected(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """The hypothetical fully-connected SM of Fig. 1.

    Same aggregate capacity as ``base`` (default: the Volta baseline) —
    4 issue slots, 8 banks, 8 CUs, 4x execution lanes — but in one shared,
    unpartitioned pool.
    """
    if base is None:
        base = volta_v100()
    n = base.subcores_per_sm
    cfg = base.replace(
        name=base.name + "-fully-connected",
        subcores_per_sm=1,
        issue_width=base.issue_width * n,
        rf_banks_per_subcore=base.rf_banks_per_subcore * n,
        collector_units_per_subcore=base.collector_units_per_subcore * n,
        fp32_lanes=base.fp32_lanes * n,
        int_lanes=base.int_lanes * n,
        sfu_lanes=base.sfu_lanes * n,
        tensor_units=base.tensor_units * n,
        ldst_units=base.ldst_units * n,
    )
    return cfg.replace(**overrides) if overrides else cfg


def tpch_config(**overrides) -> GPUConfig:
    """V100 limited to 20 SMs and 8 GB, as the paper does for TPC-H."""
    cfg = volta_v100().replace(name="volta-v100-tpch", num_sms=20)
    return cfg.replace(**overrides) if overrides else cfg


def rba(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """Baseline + the Register-Bank-Aware warp scheduler."""
    cfg = (base or volta_v100()).replace(scheduler=SchedulerPolicy.RBA)
    cfg = cfg.replace(name=cfg.name + "+rba")
    return cfg.replace(**overrides) if overrides else cfg


def srr(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """Baseline + Skewed-Round-Robin hashed sub-core assignment."""
    cfg = (base or volta_v100()).replace(assignment=AssignmentPolicy.SRR)
    cfg = cfg.replace(name=cfg.name + "+srr")
    return cfg.replace(**overrides) if overrides else cfg


def shuffle(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """Baseline + Random-Shuffle hashed sub-core assignment."""
    cfg = (base or volta_v100()).replace(assignment=AssignmentPolicy.SHUFFLE)
    cfg = cfg.replace(name=cfg.name + "+shuffle")
    return cfg.replace(**overrides) if overrides else cfg


def shuffle_rba(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """The paper's combined design: Shuffle assignment + RBA scheduling."""
    cfg = (base or volta_v100()).replace(
        assignment=AssignmentPolicy.SHUFFLE, scheduler=SchedulerPolicy.RBA
    )
    cfg = cfg.replace(name=cfg.name + "+shuffle+rba")
    return cfg.replace(**overrides) if overrides else cfg


def bank_stealing(base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """The register bank-stealing comparison point [Jing et al., ref 36]."""
    cfg = (base or volta_v100()).replace(scheduler=SchedulerPolicy.BANK_STEALING)
    cfg = cfg.replace(name=cfg.name + "+bank-stealing")
    return cfg.replace(**overrides) if overrides else cfg


def with_cus(n: int, base: GPUConfig | None = None) -> GPUConfig:
    """Baseline with ``n`` collector units per sub-core (Fig. 12 sweep)."""
    cfg = (base or volta_v100()).replace(collector_units_per_subcore=n)
    return cfg.replace(name=f"{cfg.name}-{n}cu")


PRESETS = {
    "volta": volta_v100,
    "ampere": ampere_a100,
    "kepler": kepler,
    "fully_connected": fully_connected,
    "tpch": tpch_config,
    "rba": rba,
    "srr": srr,
    "shuffle": shuffle,
    "shuffle_rba": shuffle_rba,
    "bank_stealing": bank_stealing,
}
