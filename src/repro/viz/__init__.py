"""Terminal (ASCII) chart rendering for figure output."""

from .ascii_charts import (
    bar_chart,
    hbar,
    histogram,
    sparkline,
    speedup_chart,
    stacked_bar_chart,
    stall_chart,
    timeline,
)

__all__ = [
    "bar_chart",
    "hbar",
    "histogram",
    "sparkline",
    "speedup_chart",
    "stacked_bar_chart",
    "stall_chart",
    "timeline",
]
