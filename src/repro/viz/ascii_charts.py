"""ASCII chart rendering for figure output.

The paper's evaluation is a set of bar charts and time series; this module
renders their shapes directly in the terminal so the benchmark harnesses
can show, not just list, their results — without a plotting dependency.

All functions return strings; nothing prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

#: Eighth-block characters for smooth horizontal bars.
_BLOCKS = " ▏▎▍▌▋▊▉█"
#: Sparkline levels.
_SPARKS = "▁▂▃▄▅▆▇█"


def hbar(value: float, vmax: float, width: int = 40) -> str:
    """A horizontal bar of ``value`` scaled so ``vmax`` fills ``width``."""
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    eighths = int((cells - full) * 8)
    partial = _BLOCKS[eighths] if full < width and eighths > 0 else ""
    return "█" * full + partial


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    baseline: Optional[float] = None,
) -> str:
    """Labelled horizontal bar chart.

    With ``baseline`` set, bars start at the baseline (useful for speedup
    charts where 1.0 is parity): the bar length shows ``value - baseline``
    and negative deltas render with ``-`` dashes.
    """
    if not values:
        return f"{title}\n(no data)"
    label_w = max(len(k) for k in values)
    if baseline is None:
        vmax = max(values.values()) or 1.0
        rows = [
            f"{k:<{label_w}} |{hbar(v, vmax, width):<{width}}| {fmt.format(v)}"
            for k, v in values.items()
        ]
    else:
        deltas = {k: v - baseline for k, v in values.items()}
        vmax = max(abs(d) for d in deltas.values()) or 1.0
        rows = []
        for k, v in values.items():
            d = deltas[k]
            bar = hbar(abs(d), vmax, width)
            mark = bar if d >= 0 else "-" * max(1, len(bar))
            rows.append(f"{k:<{label_w}} |{mark:<{width}}| {fmt.format(v)}")
    return "\n".join([title, "-" * len(title)] + rows)


def sparkline(values: Sequence[float], vmax: Optional[float] = None) -> str:
    """A one-line sparkline of a series."""
    if not len(values):
        return ""
    top = vmax if vmax is not None else max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    out = []
    for v in values:
        frac = max(0.0, min(1.0, v / top))
        out.append(_SPARKS[min(len(_SPARKS) - 1, int(frac * len(_SPARKS)))])
    return "".join(out)


def timeline(
    title: str,
    values: Sequence[float],
    buckets: int = 64,
    vmax: Optional[float] = None,
    annotate_mean: bool = True,
) -> str:
    """Bucketed sparkline of a long per-cycle series (Fig. 14 style)."""
    vals = list(values)
    if not vals:
        return f"{title}\n(empty)"
    step = max(1, len(vals) // buckets)
    bucketed = [
        sum(vals[i : i + step]) / len(vals[i : i + step])
        for i in range(0, len(vals), step)
    ]
    line = sparkline(bucketed, vmax=vmax)
    mean = sum(vals) / len(vals)
    suffix = f"  (mean {mean:.1f}, peak {max(vals):.0f})" if annotate_mean else ""
    return f"{title}\n{line}{suffix}"


def histogram(
    title: str,
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Vertical-label, horizontal-bar histogram (Fig. 1 distribution view)."""
    vals = list(values)
    if not vals:
        return f"{title}\n(empty)"
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts = [0] * bins
    span = hi - lo
    for v in vals:
        idx = int((v - lo) / span * bins)
        counts[min(max(idx, 0), bins - 1)] += 1
    peak = max(counts) or 1
    rows = []
    for i, c in enumerate(counts):
        b_lo = lo + span * i / bins
        b_hi = lo + span * (i + 1) / bins
        rows.append(
            f"{b_lo:7.2f}-{b_hi:<7.2f} |{hbar(c, peak, width):<{width}}| {c}"
        )
    return "\n".join([title, "-" * len(title)] + rows)


def speedup_chart(
    title: str, speedups: Mapping[str, float], width: int = 40
) -> str:
    """Bar chart of speedups anchored at 1.0 parity."""
    return bar_chart(
        title,
        speedups,
        width=width,
        fmt="{:+.1%}".replace("%", "%%") if False else "{:.3f}x",
        baseline=1.0,
    )
