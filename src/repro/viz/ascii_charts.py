"""ASCII chart rendering for figure output.

The paper's evaluation is a set of bar charts and time series; this module
renders their shapes directly in the terminal so the benchmark harnesses
can show, not just list, their results — without a plotting dependency.

All functions return strings; nothing prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

#: Eighth-block characters for smooth horizontal bars.
_BLOCKS = " ▏▎▍▌▋▊▉█"
#: Sparkline levels.
_SPARKS = "▁▂▃▄▅▆▇█"


def hbar(value: float, vmax: float, width: int = 40) -> str:
    """A horizontal bar of ``value`` scaled so ``vmax`` fills ``width``."""
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    full = int(cells)
    eighths = int((cells - full) * 8)
    partial = _BLOCKS[eighths] if full < width and eighths > 0 else ""
    return "█" * full + partial


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    baseline: Optional[float] = None,
) -> str:
    """Labelled horizontal bar chart.

    With ``baseline`` set, bars start at the baseline (useful for speedup
    charts where 1.0 is parity): the bar length shows ``value - baseline``
    and negative deltas render with ``-`` dashes.
    """
    if not values:
        return f"{title}\n(no data)"
    label_w = max(len(k) for k in values)
    if baseline is None:
        vmax = max(values.values()) or 1.0
        rows = [
            f"{k:<{label_w}} |{hbar(v, vmax, width):<{width}}| {fmt.format(v)}"
            for k, v in values.items()
        ]
    else:
        deltas = {k: v - baseline for k, v in values.items()}
        vmax = max(abs(d) for d in deltas.values()) or 1.0
        rows = []
        for k, v in values.items():
            d = deltas[k]
            bar = hbar(abs(d), vmax, width)
            mark = bar if d >= 0 else "-" * max(1, len(bar))
            rows.append(f"{k:<{label_w}} |{mark:<{width}}| {fmt.format(v)}")
    return "\n".join([title, "-" * len(title)] + rows)


def sparkline(values: Sequence[float], vmax: Optional[float] = None) -> str:
    """A one-line sparkline of a series."""
    if not len(values):
        return ""
    top = vmax if vmax is not None else max(values)
    if top <= 0:
        return _SPARKS[0] * len(values)
    out = []
    for v in values:
        frac = max(0.0, min(1.0, v / top))
        out.append(_SPARKS[min(len(_SPARKS) - 1, int(frac * len(_SPARKS)))])
    return "".join(out)


def timeline(
    title: str,
    values: Sequence[float],
    buckets: int = 64,
    vmax: Optional[float] = None,
    annotate_mean: bool = True,
) -> str:
    """Bucketed sparkline of a long per-cycle series (Fig. 14 style)."""
    vals = list(values)
    if not vals:
        return f"{title}\n(empty)"
    step = max(1, len(vals) // buckets)
    bucketed = [
        sum(vals[i : i + step]) / len(vals[i : i + step])
        for i in range(0, len(vals), step)
    ]
    line = sparkline(bucketed, vmax=vmax)
    mean = sum(vals) / len(vals)
    suffix = f"  (mean {mean:.1f}, peak {max(vals):.0f})" if annotate_mean else ""
    return f"{title}\n{line}{suffix}"


def histogram(
    title: str,
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Vertical-label, horizontal-bar histogram (Fig. 1 distribution view)."""
    vals = list(values)
    if not vals:
        return f"{title}\n(empty)"
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts = [0] * bins
    span = hi - lo
    for v in vals:
        idx = int((v - lo) / span * bins)
        counts[min(max(idx, 0), bins - 1)] += 1
    peak = max(counts) or 1
    rows = []
    for i, c in enumerate(counts):
        b_lo = lo + span * i / bins
        b_hi = lo + span * (i + 1) / bins
        rows.append(
            f"{b_lo:7.2f}-{b_hi:<7.2f} |{hbar(c, peak, width):<{width}}| {c}"
        )
    return "\n".join([title, "-" * len(title)] + rows)


def speedup_chart(
    title: str, speedups: Mapping[str, float], width: int = 40
) -> str:
    """Bar chart of speedups anchored at 1.0 parity."""
    return bar_chart(
        title,
        speedups,
        width=width,
        fmt="{:+.1%}".replace("%", "%%") if False else "{:.3f}x",
        baseline=1.0,
    )


#: Fill characters for stacked-bar categories, cycled in category order.
_STACK_FILLS = "█▓▒░╬≡:·"


def stacked_bar_chart(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    categories: Optional[Sequence[str]] = None,
    width: int = 50,
    legend: bool = True,
) -> str:
    """Normalized stacked horizontal bars (top-down breakdown view).

    ``rows`` maps a row label to its per-category values; every row is
    normalized to its own total so each bar spans ``width`` cells split
    proportionally between categories.  ``categories`` fixes segment
    order (and the legend); by default the union of row keys in first-
    seen order.  Zero-total rows render empty.
    """
    if not rows:
        return f"{title}\n(no data)"
    if categories is None:
        seen: Dict[str, None] = {}
        for values in rows.values():
            for key in values:
                seen[key] = None
        categories = list(seen)
    fills = {
        cat: _STACK_FILLS[i % len(_STACK_FILLS)]
        for i, cat in enumerate(categories)
    }
    label_w = max(len(k) for k in rows)
    lines = [title, "-" * len(title)]
    for label, values in rows.items():
        total = sum(values.get(c, 0) for c in categories)
        if total <= 0:
            lines.append(f"{label:<{label_w}} |{'':<{width}}| (empty)")
            continue
        # Largest-remainder apportionment so the segments always sum to
        # exactly ``width`` cells.
        quotas = [values.get(c, 0) / total * width for c in categories]
        cells = [int(q) for q in quotas]
        remainders = sorted(
            range(len(categories)),
            key=lambda i: (-(quotas[i] - cells[i]), i),
        )
        for i in remainders[: width - sum(cells)]:
            cells[i] += 1
        bar = "".join(
            fills[c] * n for c, n in zip(categories, cells) if n
        )
        lines.append(f"{label:<{label_w}} |{bar:<{width}}|")
    if legend:
        lines.append(
            "legend: "
            + "  ".join(f"{fills[c]} {c}" for c in categories)
        )
    return "\n".join(lines)


def stall_chart(
    per_subcore_buckets: Sequence[Mapping[str, float]],
    title: str = "issue-slot attribution",
    width: int = 50,
) -> str:
    """Stacked stall-attribution chart, one bar per sub-core.

    Input is ``SMStats.stall_cycles``: one taxonomy-bucket dict per
    sub-core in sub-core order (see :mod:`repro.obs.stall`).  Buckets
    render in taxonomy order so segments line up across sub-cores.
    """
    from ..obs.stall import STALL_BUCKETS

    rows = {
        f"sc{i}": buckets for i, buckets in enumerate(per_subcore_buckets)
    }
    categories = [
        b
        for b in STALL_BUCKETS
        if any(bk.get(b, 0) for bk in per_subcore_buckets)
    ]
    return stacked_bar_chart(
        title,
        rows,
        categories=categories or list(STALL_BUCKETS),
        width=width,
    )
