"""The determinism lint rules (RPR001..RPR006).

Each rule names one hazard class that historically breaks bit-stable
simulation (PR 1 fixed live instances of RPR001's class in
``SubCore.ready``).  A rule carries a stable ID, a one-line summary and a
fix-it hint; findings can be silenced per line with::

    risky_code()  # simlint: ignore[RPR001]
    risky_code()  # simlint: ignore            (all rules)

The checker is deliberately self-contained AST analysis — no third-party
lint framework — so the gate runs anywhere the simulator does.

What counts as "set-like" for RPR001/RPR002 is a conservative local
inference: ``set``/``frozenset`` literals, comprehensions and constructor
calls, plus local names assigned such a value in the same scope.  Dict
*views* are not flagged: since Python 3.7 dict iteration follows insertion
order, so a dict built from deterministic input iterates deterministically
(the determinism contract instead requires that dicts are *populated* in
deterministic order, which these rules enforce at the set boundary).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable ID, summary and a fix-it hint."""

    rule_id: str
    summary: str
    hint: str


RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule(
            "RPR001",
            "iteration over a set/frozenset (hash order feeds the result)",
            "iterate a list/tuple, or sort with an explicit total-order key; "
            "for scheduler pools use an insertion-ordered dict-as-set",
        ),
        Rule(
            "RPR002",
            "sorted() on a set/frozenset without a key",
            "pass an explicit key that totally orders the elements; "
            "without one, elements comparing equal keep hash order",
        ),
        Rule(
            "RPR003",
            "unseeded or global RNG use",
            "use numpy.random.default_rng(seed) with a seed derived from "
            "stable identifiers (see repro.workloads)",
        ),
        Rule(
            "RPR004",
            "wall-clock read (time.time / datetime.now)",
            "simulation state must not depend on real time; derive cycles "
            "from the model clock, keep wall time to observability code",
        ),
        Rule(
            "RPR005",
            "id()/hash() value in model code",
            "object addresses and hashes vary across processes; key on "
            "stable identifiers (warp_id, sm_id, names) instead",
        ),
        Rule(
            "RPR006",
            "mutable default argument",
            "default to None and create the list/dict/set inside the "
            "function body",
        ),
    )
}

#: Rules contributed by simcheck v2 analysis passes (repro.analysis.passes)
#: at import time.  Kept separate from :data:`RULES` so the single-file
#: linter stays self-contained, but hint lookup and ``--list-rules`` see
#: one combined catalog.
_EXTRA_RULES: Dict[str, Rule] = {}


def register_rules(rules: "List[Rule]") -> None:
    """Register pass-owned rules into the shared catalog (idempotent)."""
    for rule in rules:
        _EXTRA_RULES[rule.rule_id] = rule


def get_rule(rule_id: str) -> Optional[Rule]:
    """Look up a rule by ID across the linter and every registered pass."""
    rule = RULES.get(rule_id)
    return rule if rule is not None else _EXTRA_RULES.get(rule_id)


def all_rules() -> Dict[str, Rule]:
    """The combined catalog, linter rules first on ID collisions."""
    merged = dict(_EXTRA_RULES)
    merged.update(RULES)
    return merged


#: Legacy module-level numpy.random functions (global-state RNG).
_NP_RANDOM_LEGACY = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "poisson", "exponential", "binomial",
        "beta", "gamma", "bytes", "random_integers", "get_state", "set_state",
    }
)

#: Wall-clock callables, keyed by (module, attribute).
_WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Constructors whose call (or literal form) makes a mutable default.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"})


@dataclass
class RawFinding:
    """A finding before suppression handling (see linter.Finding)."""

    rule_id: str
    line: int
    col: int
    message: str


class _Scope:
    """Names locally known to hold set-like values."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.set_names: Set[str] = set()
        #: Names assigned anything *else* shadow an outer set name.
        self.other_names: Set[str] = set()

    def mark(self, name: str, is_set: bool) -> None:
        if is_set:
            self.set_names.add(name)
            self.other_names.discard(name)
        else:
            self.other_names.add(name)
            self.set_names.discard(name)

    def is_set_name(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.set_names:
                return True
            if name in scope.other_names:
                return False
            scope = scope.parent
        return False


class DeterminismChecker(ast.NodeVisitor):
    """Single-pass AST walk collecting RPR001..RPR006 findings."""

    def __init__(self) -> None:
        self.findings: List[RawFinding] = []
        self._scope = _Scope()
        #: Aliases of the stdlib ``random`` module (import random as r).
        self._random_aliases: Set[str] = set()
        #: Aliases of numpy itself (import numpy as np).
        self._numpy_aliases: Set[str] = set()
        #: Aliases of numpy.random (import numpy.random as npr / from
        #: numpy import random).
        self._np_random_aliases: Set[str] = set()
        #: Names imported directly from the stdlib random module.
        self._random_names: Set[str] = set()
        #: Aliases of the time / datetime modules and their classes.
        self._time_aliases: Set[str] = set()
        self._datetime_mod_aliases: Set[str] = set()
        self._datetime_cls_aliases: Set[str] = set()
        self._date_cls_aliases: Set[str] = set()
        #: Names imported directly that read the wall clock.
        self._wall_clock_names: Set[str] = set()

    # -- helpers -----------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(rule_id, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)
        )

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Conservative: does this expression evaluate to a set/frozenset?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return self._scope.is_set_name(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: s | t, s & t, s - t, s ^ t
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iteration(self, iter_node: ast.expr, context: str) -> None:
        if self._is_set_expr(iter_node):
            self._report(
                "RPR001",
                iter_node,
                f"{context} iterates a set/frozenset; element order is "
                "hash order and varies across processes",
            )

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                # ``import numpy.random`` binds "numpy"
                self._numpy_aliases.add(bound)
                if alias.name == "numpy.random" and alias.asname:
                    self._np_random_aliases.add(alias.asname)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_mod_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self._random_names.add(bound)
            elif node.module == "numpy" and alias.name == "random":
                self._np_random_aliases.add(bound)
            elif node.module == "time" and alias.name in (
                "time", "time_ns", "localtime", "gmtime", "ctime"
            ):
                self._wall_clock_names.add(bound)
            elif node.module == "datetime":
                if alias.name == "datetime":
                    self._datetime_cls_aliases.add(bound)
                elif alias.name == "date":
                    self._date_cls_aliases.add(bound)
        self.generic_visit(node)

    # -- scopes and assignments ---------------------------------------------

    def _visit_function(self, node) -> None:
        self._check_mutable_defaults(node)
        outer = self._scope
        self._scope = _Scope(parent=outer)
        for arg in list(node.args.args) + list(node.args.posonlyargs) + list(node.args.kwonlyargs):
            ann = arg.annotation
            is_set_ann = False
            if ann is not None:
                ann_src = ast.dump(ann)
                is_set_ann = "'set'" in ann_src.lower() or "'frozenset'" in ann_src.lower()
            self._scope.mark(arg.arg, is_set_ann)
        self.generic_visit(node)
        self._scope = outer

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer = self._scope
        self._scope = _Scope(parent=outer)
        self.generic_visit(node)
        self._scope = outer

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scope.mark(target.id, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            ann_src = ast.dump(node.annotation).lower()
            is_set = (
                "'set'" in ann_src
                or "'frozenset'" in ann_src
                or (node.value is not None and self._is_set_expr(node.value))
            )
            self._scope.mark(node.target.id, is_set)
        self.generic_visit(node)

    # -- RPR001: set iteration ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- calls: RPR001 (conversions), RPR002..RPR005 -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("list", "tuple", "enumerate", "iter", "next") and node.args:
                if self._is_set_expr(node.args[0]):
                    self._report(
                        "RPR001",
                        node,
                        f"{name}() materializes a set's hash order",
                    )
            elif name == "sorted" and node.args:
                has_key = any(kw.arg == "key" for kw in node.keywords)
                if not has_key and self._is_set_expr(node.args[0]):
                    self._report(
                        "RPR002",
                        node,
                        "sorted() over a set without key=; elements that "
                        "compare equal keep hash order",
                    )
            elif name in ("id", "hash") and node.args:
                self._report(
                    "RPR005",
                    node,
                    f"{name}() varies across processes; never let it reach "
                    "model state",
                )
            elif name in self._random_names:
                self._report(
                    "RPR003",
                    node,
                    f"stdlib random.{name}() uses the global unseeded RNG",
                )
            elif name in self._wall_clock_names:
                self._report("RPR004", node, f"{name}() reads the wall clock")
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        base = func.value
        # stdlib random module: random.<anything>()
        if isinstance(base, ast.Name) and base.id in self._random_aliases:
            self._report(
                "RPR003",
                node,
                f"stdlib random.{attr}() uses the global unseeded RNG",
            )
            return
        # numpy.random.<fn>() — either via np.random.<fn> or an alias of
        # numpy.random itself.
        np_random_base = (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in self._numpy_aliases
        ) or (isinstance(base, ast.Name) and base.id in self._np_random_aliases)
        if np_random_base:
            if attr in _NP_RANDOM_LEGACY:
                self._report(
                    "RPR003",
                    node,
                    f"numpy.random.{attr}() drives the legacy global RNG",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                self._report(
                    "RPR003",
                    node,
                    "numpy.random.default_rng() without a seed draws OS "
                    "entropy",
                )
            return
        # wall clock: time.time(), datetime.datetime.now(), ...
        if isinstance(base, ast.Name):
            if base.id in self._time_aliases and ("time", attr) in _WALL_CLOCK:
                self._report("RPR004", node, f"time.{attr}() reads the wall clock")
                return
            if base.id in self._datetime_cls_aliases and ("datetime", attr) in _WALL_CLOCK:
                self._report("RPR004", node, f"datetime.{attr}() reads the wall clock")
                return
            if base.id in self._date_cls_aliases and ("date", attr) in _WALL_CLOCK:
                self._report("RPR004", node, f"date.{attr}() reads the wall clock")
                return
        # datetime.datetime.now() via the module
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in self._datetime_mod_aliases
            and base.attr in ("datetime", "date")
            and (base.attr if base.attr == "date" else "datetime", attr) in _WALL_CLOCK
        ):
            self._report(
                "RPR004", node, f"datetime.{base.attr}.{attr}() reads the wall clock"
            )

    # -- RPR006: mutable defaults --------------------------------------------

    def _check_mutable_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            ):
                mutable = True
            if mutable:
                self._report(
                    "RPR006",
                    default,
                    f"mutable default argument in {node.name}(); the object "
                    "is shared across calls",
                )


def check_tree(tree: ast.AST) -> List[RawFinding]:
    """All raw findings for one parsed module."""
    checker = DeterminismChecker()
    checker.visit(tree)
    return checker.findings
