"""SARIF 2.1.0 export for simcheck findings.

One run, one tool (``simcheck``), one result per unsuppressed finding —
the minimal valid shape GitHub code scanning and SARIF viewers ingest.
Suppressed/annotated findings are included with a ``suppressions`` entry
so the justification trail survives into the artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .linter import Finding
from .rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
TOOL_NAME = "simcheck"


def _rule_descriptors(rule_ids: Sequence[str]) -> List[Dict[str, object]]:
    catalog = all_rules()
    descriptors: List[Dict[str, object]] = []
    for rule_id in sorted(dict.fromkeys(rule_ids)):
        rule = catalog.get(rule_id)
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": rule.summary if rule is not None else rule_id
                },
                "help": {"text": rule.hint if rule is not None else ""},
            }
        )
    return descriptors


def sarif_report(findings: Sequence[Finding], tool_version: str = "2.0") -> Dict[str, object]:
    """Findings as a SARIF 2.1.0 log (a JSON-safe dict)."""
    rule_ids = [f.rule_id for f in findings]
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": f"{finding.message} (fix: {finding.hint})"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "rules": _rule_descriptors(rule_ids),
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, findings: Sequence[Finding]) -> None:
    report = sarif_report(findings)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
