"""The sanitizer smoke grid: representative workloads × designs.

CI's dynamic correctness gate.  Every point in the grid is simulated
twice — once with the invariant sanitizer installed, once without — and
the gate requires both that no :class:`~repro.analysis.InvariantViolation`
fires and that the two runs' serialized stats are byte-identical (the
sanitizer's read-only contract).

The default grid crosses three workloads that exercise different model
paths (a barrier-free graph kernel, a shared-memory GEMM, a TPC-H
compressed-stream query) with the three assignment/scheduling designs the
paper's figures lean on ({RR baseline, SRR, RBA}).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: Workloads chosen to cover distinct model paths: cg-lou (register-bank
#: pressure, no barriers), pb-sgemm (shared memory + barriers), tpcU-q8
#: (the paper's imbalanced TPC-H shape).
DEFAULT_APPS: Tuple[str, ...] = ("cg-lou", "pb-sgemm", "tpcU-q8")
#: RR baseline, skewed round-robin assignment, register-bank-aware issue.
DEFAULT_DESIGNS: Tuple[str, ...] = ("baseline", "srr", "rba")


@dataclass
class SmokePoint:
    app: str
    design: str
    cycles: int
    instructions: int
    checks_run: int
    bytes_identical: bool


@dataclass
class SmokeReport:
    points: List[SmokePoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.bytes_identical for p in self.points)

    def summary(self) -> str:
        lines = [
            f"{'app':<10} {'design':<10} {'cycles':>9} {'instructions':>13} "
            f"{'checks':>8}  stats"
        ]
        for p in self.points:
            verdict = "byte-identical" if p.bytes_identical else "DIVERGED"
            lines.append(
                f"{p.app:<10} {p.design:<10} {p.cycles:>9} "
                f"{p.instructions:>13} {p.checks_run:>8}  {verdict}"
            )
        status = "OK" if self.ok else "FAILED"
        lines.append(
            f"sanitize-smoke: {len(self.points)} point(s), "
            f"0 invariant violations, {status}"
        )
        return "\n".join(lines)


def run_smoke_grid(
    apps: Sequence[str] = DEFAULT_APPS,
    designs: Sequence[str] = DEFAULT_DESIGNS,
    num_sms: int = 1,
) -> SmokeReport:
    """Run the grid; raises InvariantViolation on the first failed check.

    Imports the simulator lazily so the linter half of this package stays
    importable from :mod:`repro.core` without a cycle.
    """
    from ..experiments.designs import get_design
    from ..gpu import GPU, simulate
    from ..workloads import get_kernel

    report = SmokeReport()
    for app in apps:
        kernel = get_kernel(app)
        for design in designs:
            cfg = get_design(design)
            gpu = GPU(config=cfg.replace(sanitize=True), num_sms=num_sms)
            sanitized = gpu.run(kernel)
            checks = sum(
                sm.sanitizer.checks_run for sm in gpu.sms if sm.sanitizer is not None
            )
            plain = simulate(kernel, cfg, num_sms=num_sms)
            blob_sanitized = json.dumps(sanitized.to_payload(), sort_keys=True)
            blob_plain = json.dumps(plain.to_payload(), sort_keys=True)
            report.points.append(
                SmokePoint(
                    app=app,
                    design=design,
                    cycles=sanitized.cycles,
                    instructions=sanitized.instructions,
                    checks_run=checks,
                    bytes_identical=blob_sanitized == blob_plain,
                )
            )
    return report
