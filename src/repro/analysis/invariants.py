"""The runtime invariant sanitizer: per-cycle conservation checks.

Enabled with ``GPUConfig.sanitize=True`` (CLI: ``python -m repro
--sanitize``, smoke gate: ``python -m repro.analysis --sanitize-smoke``).
The sanitizer is strictly read-only — a sanitized run produces stats
byte-identical to an unsanitized one — and checks, every stepped cycle:

* **register accounting** — per-sub-core ``registers_used`` within
  ``[0, bank capacity]``, and the SM total equal to the sum of resident
  CTAs' admission charges (``regs_per_warp × num_warps``), so frees always
  match charges;
* **collector units** — ``pending_operands`` within
  ``[0, num_src_operands]``, the busy-CU cache consistent with the CU
  array, occupancy within the configured CU count;
* **arbitration** — the cached ``pending`` count equal to the summed
  queue lengths *and* to the summed pending operands of busy CUs (every
  queued read belongs to exactly one collector slot);
* **scheduler pools** — the ready pool and the warp list agree on which
  warps are READY;
* **shared memory / CTA residency** — within configured capacity and
  equal to the resident CTAs' footprints;
* **issue accounting** — the SM's instruction counter equal to the sum
  of its sub-core schedulers' counters;
* **liveness** — resident CTAs imply a pending wake-up event
  (``SM.next_event`` must never return None while CTAs are resident;
  scoreboard/barrier deadlocks are caught the cycle they form).

At kernel end (:meth:`Sanitizer.end_of_kernel`): warps launched ==
warps retired, no residual CTA, queued read, or busy CU.  On collected
stats (:meth:`Sanitizer.check_run_stats`): every per-run delta
non-negative and sub-core counters summing to SM/GPU totals (the
conservation half lives in :meth:`repro.metrics.SMStats
.conservation_errors`, so the stats layer stays import-free of this
module).

A failed check raises :class:`InvariantViolation` naming the invariant,
cycle, SM, sub-core and counter, with expected and actual values.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..config import GPUConfig
    from ..core.sm import StreamingMultiprocessor
    from ..metrics import SimStats


class InvariantViolation(AssertionError):
    """A cycle-level model invariant failed.

    Structured so tests (and humans) can see exactly which counter broke
    where: ``invariant`` is a stable name, ``cycle``/``sm_id``/
    ``subcore_id`` locate the violation, ``counter`` names the model
    quantity, ``expected``/``actual`` carry the two sides of the failed
    equation.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        cycle: Optional[int] = None,
        sm_id: Optional[int] = None,
        subcore_id: Optional[int] = None,
        counter: Optional[str] = None,
        expected: Any = None,
        actual: Any = None,
    ):
        self.invariant = invariant
        self.cycle = cycle
        self.sm_id = sm_id
        self.subcore_id = subcore_id
        self.counter = counter
        self.expected = expected
        self.actual = actual
        where = []
        if cycle is not None:
            where.append(f"cycle {cycle}")
        if sm_id is not None:
            where.append(f"SM {sm_id}")
        if subcore_id is not None:
            where.append(f"sub-core {subcore_id}")
        loc = ", ".join(where) or "end of run"
        detail = message
        if counter is not None:
            detail += f" [counter={counter}"
            if expected is not None or actual is not None:
                detail += f", expected={expected!r}, actual={actual!r}"
            detail += "]"
        super().__init__(f"[{invariant}] at {loc}: {detail}")


class Sanitizer:
    """Read-only invariant checker installed on each SM when enabled.

    The hook points live in the model classes themselves
    (``ArbitrationUnit.queued_requests``, ``CollectorUnit.validate``,
    ``SubCore.validate``); the sanitizer composes them into SM- and
    run-level conservation equations so each layer only asserts what it
    can see locally.
    """

    def __init__(self, config: "GPUConfig"):
        self.config = config
        self.checks_run = 0

    # -- per-cycle --------------------------------------------------------

    def check_sm(self, sm: "StreamingMultiprocessor", now: int) -> None:
        """All per-cycle invariants of one SM (called at end of SM.step)."""
        self.checks_run += 1
        cfg = self.config
        sm_id = sm.sm_id

        total_regs_used = 0
        total_issued = 0
        for sc in sm.subcores:
            scid = sc.subcore_id
            for error in sc.validate():
                raise InvariantViolation(
                    error.pop("invariant"),
                    error.pop("message"),
                    cycle=now,
                    sm_id=sm_id,
                    subcore_id=scid,
                    **error,
                )
            total_regs_used += sc.registers_used
            total_issued += sc.instructions_issued

        charged = sum(tb.regs_per_warp * tb.num_warps for tb in sm.resident_ctas)
        if total_regs_used != charged:
            raise InvariantViolation(
                "rf-conservation",
                "sub-core register charges do not match resident CTA demand "
                "(a free missed or exceeded its charge)",
                cycle=now,
                sm_id=sm_id,
                counter="registers_used",
                expected=charged,
                actual=total_regs_used,
            )

        shared_expected = sum(tb.shared_mem for tb in sm.resident_ctas)
        if sm.shared_mem_used != shared_expected:
            raise InvariantViolation(
                "shared-mem-conservation",
                "shared memory in use does not match resident CTA footprints",
                cycle=now,
                sm_id=sm_id,
                counter="shared_mem_used",
                expected=shared_expected,
                actual=sm.shared_mem_used,
            )
        if not 0 <= sm.shared_mem_used <= cfg.shared_mem_per_sm:
            raise InvariantViolation(
                "shared-mem-capacity",
                "shared memory usage outside configured capacity",
                cycle=now,
                sm_id=sm_id,
                counter="shared_mem_used",
                expected=f"0..{cfg.shared_mem_per_sm}",
                actual=sm.shared_mem_used,
            )

        if len(sm.resident_ctas) > cfg.max_ctas_per_sm:
            raise InvariantViolation(
                "cta-residency",
                "more resident CTAs than the configured maximum",
                cycle=now,
                sm_id=sm_id,
                counter="resident_ctas",
                expected=cfg.max_ctas_per_sm,
                actual=len(sm.resident_ctas),
            )

        if sm.total_instructions != total_issued:
            raise InvariantViolation(
                "issue-accounting",
                "SM instruction counter diverged from the sum of sub-core "
                "scheduler counters",
                cycle=now,
                sm_id=sm_id,
                counter="total_instructions",
                expected=total_issued,
                actual=sm.total_instructions,
            )

        if cfg.stall_attribution:
            # Every issue slot of every accounted cycle lands in exactly
            # one taxonomy bucket: bucket sums must track the SM's
            # attributed-cycle count exactly, every cycle.
            expected_slots = sm._attr_cycles * cfg.issue_width
            for sc in sm.subcores:
                if sc.stall_cycles is None:
                    continue
                accounted = sum(sc.stall_cycles.values())
                if accounted != expected_slots:
                    raise InvariantViolation(
                        "stall-attribution",
                        "stall-attribution buckets do not cover every issue "
                        "slot of every accounted cycle",
                        cycle=now,
                        sm_id=sm_id,
                        subcore_id=sc.subcore_id,
                        counter="stall_cycles",
                        expected=expected_slots,
                        actual=accounted,
                    )

        launched = sm._warp_id_counter
        retired = len(sm.warp_finish_cycles)
        in_flight = sum(
            1 for sc in sm.subcores for w in sc.warps if not w.done
        )
        if launched != retired + in_flight:
            raise InvariantViolation(
                "warp-conservation",
                "warps launched != retired + in-flight",
                cycle=now,
                sm_id=sm_id,
                counter="warps",
                expected=launched,
                actual=retired + in_flight,
            )

        # Liveness: resident CTAs imply a next event.  An SM whose warps
        # are all wedged (blocked with an empty writeback heap, or parked
        # at a barrier no one will ever reach) would make next_event()
        # return None and the cycle loop hang or mis-fast-forward; catch
        # it at the cycle it first becomes true, with full state context.
        if sm.resident_ctas and sm.next_event(now) is None:
            raise InvariantViolation(
                "liveness",
                "resident CTAs but no future event will ever wake this SM "
                "(scoreboard or barrier deadlock)",
                cycle=now,
                sm_id=sm_id,
                counter="next_event",
                expected="a wake-up cycle",
                actual=None,
            )

    # -- end of kernel ----------------------------------------------------

    def end_of_kernel(self, sm: "StreamingMultiprocessor", now: int) -> None:
        """Drain invariants once a kernel's work has fully completed."""
        sm_id = sm.sm_id
        if sm.resident_ctas:
            raise InvariantViolation(
                "drain-ctas",
                "resident CTAs at kernel end",
                cycle=now,
                sm_id=sm_id,
                counter="resident_ctas",
                expected=0,
                actual=len(sm.resident_ctas),
            )
        launched = sm._warp_id_counter
        retired = len(sm.warp_finish_cycles)
        if launched != retired:
            raise InvariantViolation(
                "warp-conservation",
                "warps launched != warps retired at kernel end",
                cycle=now,
                sm_id=sm_id,
                counter="warps",
                expected=launched,
                actual=retired,
            )
        for sc in sm.subcores:
            if sc.arbitration.pending or sc.arbitration.queued_requests():
                raise InvariantViolation(
                    "drain-arbitration",
                    "arbitration queues not drained at kernel end",
                    cycle=now,
                    sm_id=sm_id,
                    subcore_id=sc.subcore_id,
                    counter="arbitration.pending",
                    expected=0,
                    actual=sc.arbitration.pending,
                )
            busy = sum(1 for cu in sc.collector_units if not cu.free)
            if busy:
                raise InvariantViolation(
                    "drain-collector-units",
                    "collector units still occupied at kernel end",
                    cycle=now,
                    sm_id=sm_id,
                    subcore_id=sc.subcore_id,
                    counter="busy_cus",
                    expected=0,
                    actual=busy,
                )
            if sc.registers_used:
                raise InvariantViolation(
                    "rf-conservation",
                    "register-file space still charged at kernel end",
                    cycle=now,
                    sm_id=sm_id,
                    subcore_id=sc.subcore_id,
                    counter="registers_used",
                    expected=0,
                    actual=sc.registers_used,
                )

    # -- collected stats ---------------------------------------------------

    def check_run_stats(self, stats: "SimStats") -> None:
        """Conservation cross-checks on a run's collected per-run deltas."""
        for error in stats.conservation_errors():
            raise InvariantViolation(
                "stats-conservation",
                error,
                counter="stats",
            )
        if not self.config.stall_attribution:
            return
        # The per-run taxonomy contract: for every SM, every sub-core's
        # buckets (including the SM-idle remainder folded in at stats
        # collection) sum to exactly cycles x issue_width.
        expected_slots = stats.cycles * self.config.issue_width
        for sm_stats in stats.sms:
            if sm_stats.stall_cycles is None:
                raise InvariantViolation(
                    "stall-attribution",
                    "stall attribution enabled but SM stats carry no buckets",
                    sm_id=sm_stats.sm_id,
                    counter="stall_cycles",
                    expected="per-sub-core buckets",
                    actual=None,
                )
            for sc_id, buckets in enumerate(sm_stats.stall_cycles):
                accounted = sum(buckets.values())
                if accounted != expected_slots:
                    raise InvariantViolation(
                        "stall-attribution",
                        "per-run stall-attribution buckets do not sum to "
                        "cycles x issue_width",
                        sm_id=sm_stats.sm_id,
                        subcore_id=sc_id,
                        counter="stall_cycles",
                        expected=expected_slots,
                        actual=accounted,
                    )
