"""Static call graph over a :class:`~repro.analysis.project.ProjectModel`.

Resolution strategy (documented limitation: purely syntactic, no dataflow):

1. **Typed receivers.** ``self.m()`` resolves on the caller's class;
   ``self.a.b.m()`` follows the inferred ``__init__`` attribute types;
   local names pick up types from parameter annotations, ``x = self.attr``,
   ``x = SomeClass(...)`` / annotated factory calls, and ``for x in <typed
   container>`` loops.  A typed receiver resolves to every implementation
   in that class's project subtree (class-hierarchy analysis).
2. **Name-based CHA fallback.** An untyped receiver ``x.m()`` falls back
   to *all* project methods named ``m`` — but only when ``m`` is defined
   somewhere in the project, so builtin container methods never create
   edges.
3. Bare ``f()`` calls resolve to project module-level functions.
   Class constructions (``SomeClass(...)``) do **not** add an edge to
   ``__init__``; the hot-path pass flags the construction itself instead.

Call sites inside *cold-guarded* regions — ``if`` blocks whose test
mentions a tracer/sanitizer hook, ``raise``/``assert`` statements — are
kept in the graph but marked ``cold`` so hot-path reachability can skip
the observability slow paths that are compiled out when tracing is off.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .project import (
    TAG_COLD,
    FunctionInfo,
    ProjectModel,
    TypeRef,
    _self_attr,
)

#: Substrings of names/attributes whose ``if`` guards mark a cold region.
COLD_GUARD_MARKERS = ("tracer", "sanitizer", "debug", "validate")


def _mentions_cold_marker(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(marker in name for marker in COLD_GUARD_MARKERS):
            return True
    return False


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge."""

    caller: str       # fid
    callee: str       # fid
    lineno: int
    cold: bool        # inside a cold-guarded region of the caller
    via_fallback: bool  # resolved by name-based CHA, not a typed receiver


class _LocalEnv:
    """Forward-scan local variable types for one function body."""

    def __init__(self, project: ProjectModel, fn: FunctionInfo):
        self.project = project
        self.types: Dict[str, TypeRef] = {}
        args = list(fn.node.args.posonlyargs) + list(fn.node.args.args) + list(
            fn.node.args.kwonlyargs
        )
        for arg in args:
            if arg.arg == "self":
                continue
            ref = project.resolve_annotation(arg.annotation)
            if ref is not None:
                self.types[arg.arg] = ref

    def learn_assign(self, target: ast.expr, value: ast.expr, class_name: Optional[str]) -> None:
        if not isinstance(target, ast.Name):
            return
        ref = self._value_type(value, class_name)
        if ref is not None:
            self.types[target.id] = ref

    def learn_loop(self, target: ast.expr, iterable: ast.expr, class_name: Optional[str]) -> None:
        if not isinstance(target, ast.Name):
            return
        ref = self._value_type(iterable, class_name)
        if ref is None and isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Attribute) and func.attr == "values":
                ref = self._value_type(func.value, class_name)
        if ref is not None and ref.container is not None:
            self.types[target.id] = TypeRef(None, ref.cls)

    def _value_type(self, expr: ast.expr, class_name: Optional[str]) -> Optional[TypeRef]:
        project = self.project
        if isinstance(expr, ast.Name):
            if expr.id == "self" and class_name is not None:
                return TypeRef(None, class_name)
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._value_type(expr.value, class_name)
            if base is None or base.container is not None:
                return None
            attrs = project.flattened_attrs(base.cls)
            info = attrs.get(expr.attr)
            return info.type if info is not None else None
        if isinstance(expr, ast.Subscript):
            base = self._value_type(expr.value, class_name)
            if base is not None and base.container is not None:
                return TypeRef(None, base.cls)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if project.is_project_class(func.id):
                    return TypeRef(None, func.id)
                return project.function_return_type(func.id)
            return None
        if isinstance(expr, ast.IfExp):
            body = self._value_type(expr.body, class_name)
            return body if body is not None else self._value_type(expr.orelse, class_name)
        return None

    def receiver_type(self, expr: ast.expr, class_name: Optional[str]) -> Optional[TypeRef]:
        return self._value_type(expr, class_name)


class CallGraph:
    """Edges + reachability queries over the project's functions."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.edges: Dict[str, List[CallSite]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for fn in self.project.functions.values():
            self.edges[fn.fid] = self._extract(fn)

    def _extract(self, fn: FunctionInfo) -> List[CallSite]:
        env = _LocalEnv(self.project, fn)
        sites: List[CallSite] = []
        self._walk_block(fn, fn.node.body, env, cold=False, out=sites)
        return sites

    def _walk_block(
        self,
        fn: FunctionInfo,
        body: Sequence[ast.stmt],
        env: _LocalEnv,
        cold: bool,
        out: List[CallSite],
    ) -> None:
        for stmt in body:
            self._walk_stmt(fn, stmt, env, cold, out)

    def _walk_stmt(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        env: _LocalEnv,
        cold: bool,
        out: List[CallSite],
    ) -> None:
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._resolve_call(fn, node, env, True, out)
            return
        if isinstance(stmt, ast.If):
            guard_cold = cold or _mentions_cold_marker(stmt.test)
            self._collect_expr(fn, stmt.test, env, cold, out)
            self._walk_block(fn, stmt.body, env, guard_cold, out)
            self._walk_block(fn, stmt.orelse, env, cold, out)
            return
        if isinstance(stmt, ast.For):
            env.learn_loop(stmt.target, stmt.iter, fn.class_name)
            self._collect_expr(fn, stmt.iter, env, cold, out)
            self._walk_block(fn, stmt.body, env, cold, out)
            self._walk_block(fn, stmt.orelse, env, cold, out)
            return
        if isinstance(stmt, ast.While):
            self._collect_expr(fn, stmt.test, env, cold, out)
            self._walk_block(fn, stmt.body, env, cold, out)
            self._walk_block(fn, stmt.orelse, env, cold, out)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(fn, stmt.body, env, cold, out)
            for handler in stmt.handlers:
                self._walk_block(fn, handler.body, env, True, out)
            self._walk_block(fn, stmt.orelse, env, cold, out)
            self._walk_block(fn, stmt.finalbody, env, cold, out)
            return
        if isinstance(stmt, (ast.With,)):
            for item in stmt.items:
                self._collect_expr(fn, item.context_expr, env, cold, out)
            self._walk_block(fn, stmt.body, env, cold, out)
            return
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1:
                env.learn_assign(stmt.targets[0], stmt.value, fn.class_name)
            self._collect_expr(fn, stmt.value, env, cold, out)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            env.learn_assign(stmt.target, stmt.value, fn.class_name)
            self._collect_expr(fn, stmt.value, env, cold, out)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs analysed separately (closures flagged by RPR101)
        # Generic: scan contained expressions.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._collect_expr(fn, node, env, cold, out)
            elif isinstance(node, ast.stmt):
                self._walk_stmt(fn, node, env, cold, out)

    def _collect_expr(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: _LocalEnv,
        cold: bool,
        out: List[CallSite],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._resolve_call(fn, node, env, cold, out)

    def _resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: _LocalEnv,
        cold: bool,
        out: List[CallSite],
    ) -> None:
        project = self.project
        func = call.func
        if isinstance(func, ast.Name):
            for target in project.module_functions.get(func.id, ()):
                out.append(CallSite(fn.fid, target.fid, call.lineno, cold, False))
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        recv = func.value
        # ``super().m()``
        if (
            isinstance(recv, ast.Call)
            and isinstance(recv.func, ast.Name)
            and recv.func.id == "super"
            and fn.class_name is not None
        ):
            mro = project.mro(fn.class_name)
            past_own = False
            for info in mro:
                if info.name == fn.class_name:
                    past_own = True
                    continue
                if past_own and method in info.methods:
                    out.append(CallSite(fn.fid, info.methods[method].fid, call.lineno, cold, False))
                    return
            return
        recv_type = env.receiver_type(recv, fn.class_name)
        if recv_type is not None and recv_type.container is None:
            targets = project.hierarchy_methods(recv_type.cls, method)
            if not targets:
                resolved = project.resolve_method(recv_type.cls, method)
                targets = [resolved] if resolved is not None else []
            for target in targets:
                out.append(CallSite(fn.fid, target.fid, call.lineno, cold, False))
            return
        # Fallback: name-based CHA over project-defined method names.
        for target in project.methods_by_name.get(method, ()):
            out.append(CallSite(fn.fid, target.fid, call.lineno, cold, True))

    # -- queries -----------------------------------------------------------

    def callees(self, fid: str) -> List[CallSite]:
        return self.edges.get(fid, [])

    def reachable(
        self,
        roots: Iterable[str],
        module_prefixes: Optional[Sequence[str]] = None,
        skip_cold: bool = True,
    ) -> Set[str]:
        """Function fids reachable from ``roots``.

        ``module_prefixes`` restricts traversal to matching modules;
        ``skip_cold`` drops edges from cold-guarded call sites and stops
        at functions tagged ``# simcheck: cold``.
        """
        project = self.project
        seen: Set[str] = set()
        stack: List[str] = [fid for fid in roots if fid in project.functions]
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            fn = project.functions[fid]
            if module_prefixes is not None and not any(
                fn.module == p or fn.module.startswith(p + ".") for p in module_prefixes
            ):
                continue
            if skip_cold and fn.annotation is not None and fn.annotation.tag == TAG_COLD:
                continue
            seen.add(fid)
            for site in self.edges.get(fid, ()):
                if skip_cold and site.cold:
                    continue
                if site.callee not in seen:
                    stack.append(site.callee)
        return seen
