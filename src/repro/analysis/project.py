"""The shared whole-program model behind simcheck v2's analysis passes.

A :class:`ProjectModel` is built once per ``--check-all`` run and handed to
every pass: per-module ASTs, a symbol table of classes and functions, each
class's ``__init__`` attribute map (with mutability/ownership/type
inference), and the ``# simcheck:`` annotation index.

The model is deliberately *syntactic*: everything is derived from the ASTs
of one package tree, with a small, documented type-inference core —
enough to resolve ``self.memory.begin_run()`` to a concrete class without
importing (or executing) any simulator code.

Annotation grammar (one per line, reason optional)::

    # simcheck: persistent -- cumulative statistic; snapshot/delta reported
    # simcheck: reset-hook
    # simcheck: cold
    # simcheck: hot-ok -- work-stealing upper-bound study

``persistent`` (on an ``__init__`` attribute assignment) exempts the
attribute from the reset-completeness rules; ``reset-hook`` (on a ``def``)
marks an additional reset entry point besides ``begin_run``/``reset``;
``cold`` (on a ``def``) removes a function from the cycle-hot set; and
``hot-ok`` (on a ``def`` or an offending line) accepts hot-path findings
with a recorded justification.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: ``# simcheck: <tag>`` with an optional ``-- reason`` tail.
SIMCHECK_RE = re.compile(
    r"#\s*simcheck:\s*(?P<tag>[a-z][a-z-]*)(?:\s*--\s*(?P<reason>.*\S))?"
)

TAG_PERSISTENT = "persistent"
TAG_RESET_HOOK = "reset-hook"
TAG_COLD = "cold"
TAG_HOT_OK = "hot-ok"

KNOWN_TAGS = frozenset({TAG_PERSISTENT, TAG_RESET_HOOK, TAG_COLD, TAG_HOT_OK})

#: Builtin factory calls that allocate a fresh mutable container.
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "OrderedDict", "Counter"}
)

#: Container heads recognised in type annotations.
_CONTAINER_HEADS = {
    "List": "list",
    "list": "list",
    "Dict": "dict",
    "dict": "dict",
    "Set": "set",
    "set": "set",
    "DefaultDict": "dict",
    "Deque": "list",
    "deque": "list",
}

#: Method names that mutate a container in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "remove",
        "discard",
        "clear",
        "extend",
        "insert",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Free functions that mutate their first argument (heapq protocol).
MUTATOR_FUNCTIONS = frozenset({"heappush", "heappop", "heapify", "heappushpop", "heapreplace"})

#: Method names that count as a reset hook on a component.
RESET_HOOK_NAMES = ("begin_run", "reset")


class Annotation(NamedTuple):
    """One ``# simcheck:`` comment."""

    tag: str
    reason: Optional[str]


class TypeRef(NamedTuple):
    """An inferred attribute type: optionally a container of project class."""

    container: Optional[str]  # None | "list" | "dict" | "set"
    cls: str                  # project class name


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str                       # dotted ("repro.core.sm")
    path: str                       # filesystem path as given
    tree: ast.Module
    annotations: Dict[int, Annotation]  # line number -> simcheck annotation
    source_lines: List[str]


@dataclass
class FunctionInfo:
    """A module-level function or a method."""

    name: str                      # bare name
    qualname: str                  # "Class.method" or "function"
    fid: str                       # globally unique: "<module>.<qualname>"
    module: str
    path: str
    node: ast.FunctionDef
    class_name: Optional[str]
    annotation: Optional[Annotation]  # simcheck tag on the ``def`` line


@dataclass
class AttrInfo:
    """One ``self.X = ...`` attribute assigned in ``__init__``."""

    name: str
    lineno: int
    path: str
    annotation: Optional[Annotation]
    #: The assigned value is (or contains) a freshly allocated mutable
    #: container (display, comprehension, factory call, ``[x] * n``).
    mutable_container: bool
    #: The value is constructed here (class/factory call or a
    #: display/comprehension of such calls) rather than received from a
    #: parameter or derived from existing state — construction implies
    #: reset responsibility.
    owned: bool
    type: Optional[TypeRef]
    #: Methods (other than ``__init__``) that rebind the attribute.
    reassigned_in: Set[str] = field(default_factory=set)
    #: Methods (other than ``__init__``) that mutate it in place.
    mutated_in: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One project class with its own (un-flattened) members."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: List[str]               # base names that resolve within the project
    methods: Dict[str, FunctionInfo]
    attrs: Dict[str, AttrInfo]


class ProjectModel:
    """Symbol table + attribute maps over one package tree."""

    def __init__(self, root: Path):
        self.root = root
        self.package = root.name
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}        # by fid
        self.module_functions: Dict[str, List[FunctionInfo]] = {}  # bare name
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.subclasses: Dict[str, List[str]] = {}

    # -- lookups -----------------------------------------------------------

    def is_project_class(self, name: str) -> bool:
        return name in self.classes

    def mro(self, class_name: str) -> List[ClassInfo]:
        """The class and its project bases, subclass-first (depth-first)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop(0)
            if name in seen or name not in self.classes:
                continue
            seen.add(name)
            info = self.classes[name]
            out.append(info)
            stack.extend(info.bases)
        return out

    def flattened_attrs(self, class_name: str) -> Dict[str, AttrInfo]:
        """``__init__`` attributes of the class and its bases (subclass wins)."""
        attrs: Dict[str, AttrInfo] = {}
        for info in reversed(self.mro(class_name)):
            attrs.update(info.attrs)
        return attrs

    def resolve_method(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        """Resolve ``method`` on ``class_name`` walking project bases."""
        for info in self.mro(class_name):
            if method in info.methods:
                return info.methods[method]
        return None

    def hierarchy_methods(self, class_name: str, method: str) -> List[FunctionInfo]:
        """All implementations of ``method`` across the class's subtree."""
        out: List[FunctionInfo] = []
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is not None and method in info.methods:
                out.append(info.methods[method])
            stack.extend(self.subclasses.get(name, ()))
        return out

    def annotation_at(self, module: str, line: int) -> Optional[Annotation]:
        info = self.modules.get(module)
        if info is None:
            return None
        return info.annotations.get(line)

    def reset_hooks(self, class_name: str) -> List[FunctionInfo]:
        """Reset entry points of a class: named hooks + ``reset-hook`` tags."""
        hooks: List[FunctionInfo] = []
        seen: Set[str] = set()
        for info in self.mro(class_name):
            for meth in info.methods.values():
                if meth.name in seen:
                    continue
                tagged = meth.annotation is not None and meth.annotation.tag == TAG_RESET_HOOK
                if meth.name in RESET_HOOK_NAMES or tagged:
                    hooks.append(meth)
                    seen.add(meth.name)
        return hooks

    def has_reset_hook(self, class_name: str) -> bool:
        return bool(self.reset_hooks(class_name))

    # -- type resolution ---------------------------------------------------

    def resolve_annotation(self, expr: Optional[ast.expr]) -> Optional[TypeRef]:
        """TypeRef named by a type annotation, unwrapping Optional/containers."""
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(expr, ast.Name):
            if self.is_project_class(expr.id):
                return TypeRef(None, expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            if self.is_project_class(expr.attr):
                return TypeRef(None, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            head = expr.value
            if not isinstance(head, (ast.Name, ast.Attribute)):
                return None
            head_name = head.id if isinstance(head, ast.Name) else head.attr
            slice_expr: ast.expr = expr.slice
            if head_name == "Optional":
                return self.resolve_annotation(slice_expr)
            if head_name == "Union":
                if isinstance(slice_expr, ast.Tuple):
                    for elt in slice_expr.elts:
                        ref = self.resolve_annotation(elt)
                        if ref is not None:
                            return ref
                return None
            container = _CONTAINER_HEADS.get(head_name)
            if container is None:
                return None
            if container == "dict" and isinstance(slice_expr, ast.Tuple) and len(slice_expr.elts) == 2:
                value_ref = self.resolve_annotation(slice_expr.elts[1])
                if value_ref is not None and value_ref.container is None:
                    return TypeRef("dict", value_ref.cls)
                return None
            elem = slice_expr.elts[0] if isinstance(slice_expr, ast.Tuple) and slice_expr.elts else slice_expr
            elem_ref = self.resolve_annotation(elem)
            if elem_ref is not None and elem_ref.container is None:
                return TypeRef(container, elem_ref.cls)
            return None
        return None

    def annotation_is_container(self, expr: Optional[ast.expr]) -> bool:
        """Whether a type annotation names a mutable container."""
        if expr is None:
            return False
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return False
        if isinstance(expr, ast.Name):
            return expr.id in _CONTAINER_HEADS
        if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
            head = expr.value.id
            if head == "Optional" or head == "Union":
                slc: ast.expr = expr.slice
                if isinstance(slc, ast.Tuple):
                    return any(self.annotation_is_container(e) for e in slc.elts)
                return self.annotation_is_container(slc)
            return head in _CONTAINER_HEADS
        return False

    def function_return_type(self, name: str) -> Optional[TypeRef]:
        """Return TypeRef of a project function resolved by bare name."""
        for fn in self.module_functions.get(name, ()):
            ref = self.resolve_annotation(fn.node.returns)
            if ref is not None:
                return ref
        return None

    def function_returns_container(self, name: str) -> bool:
        for fn in self.module_functions.get(name, ()):
            if self.annotation_is_container(fn.node.returns):
                return True
        return False


# -- value classification -----------------------------------------------------


class ValueFacts(NamedTuple):
    mutable: bool
    owned: bool
    type: Optional[TypeRef]


def _classify_value(
    project: ProjectModel, expr: ast.expr, param_types: Dict[str, Optional[TypeRef]]
) -> ValueFacts:
    """Mutability / ownership / type facts of one ``__init__`` value."""
    if isinstance(expr, ast.IfExp):
        body = _classify_value(project, expr.body, param_types)
        orelse = _classify_value(project, expr.orelse, param_types)
        return ValueFacts(
            mutable=body.mutable or orelse.mutable,
            owned=body.owned or orelse.owned,
            type=body.type if body.type is not None else orelse.type,
        )
    if isinstance(expr, (ast.List, ast.Set, ast.Dict)):
        elem_type: Optional[TypeRef] = None
        if isinstance(expr, ast.List) and expr.elts:
            first = _classify_value(project, expr.elts[0], param_types)
            if first.type is not None and first.type.container is None:
                elem_type = TypeRef("list", first.type.cls)
        owned = True
        return ValueFacts(mutable=True, owned=owned, type=elem_type)
    if isinstance(expr, (ast.ListComp, ast.SetComp)):
        elem = _classify_value(project, expr.elt, param_types)
        container = "list" if isinstance(expr, ast.ListComp) else "set"
        elem_type = (
            TypeRef(container, elem.type.cls)
            if elem.type is not None and elem.type.container is None
            else None
        )
        return ValueFacts(mutable=True, owned=elem.owned, type=elem_type)
    if isinstance(expr, ast.DictComp):
        value = _classify_value(project, expr.value, param_types)
        elem_type = (
            TypeRef("dict", value.type.cls)
            if value.type is not None and value.type.container is None
            else None
        )
        return ValueFacts(mutable=True, owned=value.owned, type=elem_type)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        if isinstance(expr.left, ast.List) or isinstance(expr.right, ast.List):
            return ValueFacts(mutable=True, owned=True, type=None)
        return ValueFacts(False, False, None)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            name = func.id
            if project.is_project_class(name):
                return ValueFacts(mutable=False, owned=True, type=TypeRef(None, name))
            if name in MUTABLE_FACTORIES:
                return ValueFacts(mutable=True, owned=True, type=None)
            ref = project.function_return_type(name)
            if ref is not None:
                return ValueFacts(mutable=False, owned=True, type=ref)
            if project.function_returns_container(name):
                return ValueFacts(mutable=True, owned=True, type=None)
            return ValueFacts(False, False, None)
        if isinstance(func, ast.Attribute) and func.attr in MUTABLE_FACTORIES:
            return ValueFacts(mutable=True, owned=True, type=None)
        return ValueFacts(False, False, None)
    if isinstance(expr, ast.Name):
        ref = param_types.get(expr.id)
        # Received, not constructed: the caller owns (and resets) it.
        return ValueFacts(mutable=False, owned=False, type=ref)
    return ValueFacts(False, False, None)


# -- scanning -----------------------------------------------------------------


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class AttrUseScanner(ast.NodeVisitor):
    """Alias-aware scan of one method for self-attribute uses.

    Records, per attribute of ``self``: rebinds (``self.X = ...``),
    in-place mutations (subscript stores, mutator-method calls, heapq
    calls), explicit clears, element iteration, and reset-hook cascades
    (``self.X.begin_run()`` / ``for v in self.X: v.begin_run()``).
    Aliases are tracked one level deep (``q = self.X`` and loop variables
    over ``self.X`` / ``self.X.values()``).
    """

    def __init__(self) -> None:
        self.rebinds: Set[str] = set()
        #: ``self.X += ...`` — reads the stale value, so it is an *update*,
        #: never a re-initialization.
        self.augments: Set[str] = set()
        self.mutations: Set[str] = set()
        self.clears: Set[str] = set()
        self.cascaded: Set[str] = set()
        self.self_calls: Set[str] = set()
        self.super_calls: Set[str] = set()
        self._aliases: Dict[str, str] = {}       # local name -> attr
        self._loop_elems: Dict[str, str] = {}    # loop var -> attr iterated

    # -- helpers -----------------------------------------------------------

    def _attr_of(self, node: ast.expr) -> Optional[str]:
        attr = _self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        return None

    def _record_store(self, target: ast.expr) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.rebinds.add(attr)
            return
        if isinstance(target, ast.Subscript):
            base = self._attr_of(target.value)
            if base is not None:
                self.mutations.add(base)
                self.clears.add(base)  # a subscript re-init counts as reset
            # ``self.X[...]`` through a chained attribute: self.a.b[...] is
            # a mutation of ``a``'s referent, not of ``self.a`` itself.
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt)

    # -- visitors ----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # Alias tracking: ``local = self.X``.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            attr = _self_attr(node.value)
            if attr is not None:
                self._aliases[node.targets[0].id] = attr
        for target in node.targets:
            self._record_store(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_store(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self.augments.add(attr)
        elif isinstance(node.target, ast.Subscript):
            base = self._attr_of(node.target.value)
            if base is not None:
                self.mutations.add(base)
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        # ``for v in self.X:`` / ``for v in self.X.values():``
        iter_attr = self._attr_of(node.iter)
        if iter_attr is None and isinstance(node.iter, ast.Call):
            func = node.iter.func
            if isinstance(func, ast.Attribute) and func.attr in ("values", "items", "keys"):
                iter_attr = self._attr_of(func.value)
        if iter_attr is not None and isinstance(node.target, ast.Name):
            self._loop_elems[node.target.id] = iter_attr
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv = func.value
            attr = self._attr_of(recv)
            if attr is not None:
                if func.attr in MUTATOR_METHODS:
                    self.mutations.add(attr)
                    if func.attr == "clear":
                        self.clears.add(attr)
                if func.attr in RESET_HOOK_NAMES:
                    self.cascaded.add(attr)
            elif isinstance(recv, ast.Name) and recv.id in self._loop_elems:
                base = self._loop_elems[recv.id]
                if func.attr in RESET_HOOK_NAMES:
                    self.cascaded.add(base)
                if func.attr == "clear":
                    self.clears.add(base)
                    self.mutations.add(base)
            elif isinstance(recv, ast.Subscript):
                base = self._attr_of(recv.value)
                if base is not None and func.attr in MUTATOR_METHODS:
                    # ``self.queues[bank].append(...)`` mutates ``queues``'
                    # contents.
                    self.mutations.add(base)
            elif isinstance(recv, ast.Call) and isinstance(recv.func, ast.Name) and recv.func.id == "super":
                self.super_calls.add(func.attr)
            # ``self.m(...)`` intra-class call.
            if isinstance(recv, ast.Name) and recv.id == "self":
                self.self_calls.add(func.attr)
            # heapq-style free-function mutation through an attribute
            # (``heapq.heappush(self.X, ...)``).
            if func.attr in MUTATOR_FUNCTIONS:
                for arg in node.args[:1]:
                    target = self._attr_of(arg)
                    if target is not None:
                        self.mutations.add(target)
        elif isinstance(func, ast.Name) and func.id in MUTATOR_FUNCTIONS:
            for arg in node.args[:1]:
                target = self._attr_of(arg)
                if target is not None:
                    self.mutations.add(target)
        self.generic_visit(node)


def scan_method(node: ast.FunctionDef) -> AttrUseScanner:
    scanner = AttrUseScanner()
    for stmt in node.body:
        scanner.visit(stmt)
    return scanner


# -- construction -------------------------------------------------------------


def _scan_annotations(source: str) -> Dict[int, Annotation]:
    """``# simcheck:`` annotations by line, from real comment tokens only.

    Tokenizing (rather than regex-scanning raw lines) keeps annotation
    *examples* inside docstrings and string literals from registering as
    live annotations.
    """
    out: Dict[int, Annotation] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SIMCHECK_RE.search(tok.string)
            if match is not None:
                out[tok.start[0]] = Annotation(match.group("tag"), match.group("reason"))
    except tokenize.TokenError:
        pass  # truncated/invalid source: the linter reports it separately
    return out


def _module_name(root: Path, path: Path) -> str:
    rel = path.relative_to(root)
    parts = [root.name] + list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _param_types(project: ProjectModel, node: ast.FunctionDef) -> Dict[str, Optional[TypeRef]]:
    out: Dict[str, Optional[TypeRef]] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs)
    for arg in args:
        if arg.arg == "self":
            continue
        out[arg.arg] = project.resolve_annotation(arg.annotation)
    return out


def _collect_attrs(
    project: ProjectModel, cls: ClassInfo, init: FunctionInfo, module: ModuleInfo
) -> Dict[str, AttrInfo]:
    params = _param_types(project, init.node)
    attrs: Dict[str, AttrInfo] = {}

    for stmt in ast.walk(init.node):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        ann: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, ann = stmt.target, stmt.value, stmt.annotation
        else:
            continue
        name = _self_attr(target)
        if name is None or name in attrs or value is None:
            continue
        facts = _classify_value(project, value, params)
        mutable = facts.mutable or project.annotation_is_container(ann)
        type_ref = facts.type
        ann_ref = project.resolve_annotation(ann)
        if ann_ref is not None:
            type_ref = ann_ref
        attrs[name] = AttrInfo(
            name=name,
            lineno=stmt.lineno,
            path=module.path,
            annotation=module.annotations.get(stmt.lineno),
            mutable_container=mutable,
            owned=facts.owned,
            type=type_ref,
        )

    # Mutation scan over the other methods.
    for meth_name, meth in cls.methods.items():
        if meth_name == "__init__":
            continue
        scanner = scan_method(meth.node)
        for attr in scanner.rebinds | scanner.augments:
            if attr in attrs:
                attrs[attr].reassigned_in.add(meth_name)
        for attr in scanner.mutations:
            if attr in attrs:
                attrs[attr].mutated_in.add(meth_name)
    return attrs


def build_project(root: Path, paths: Optional[Sequence[Path]] = None) -> ProjectModel:
    """Parse every module under ``root`` into a :class:`ProjectModel`."""
    project = ProjectModel(root)
    files: Iterable[Path] = paths if paths is not None else sorted(root.rglob("*.py"))

    # Pass 1: parse, register modules / classes / functions.
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # the RPR000 linter reports these
        module = ModuleInfo(
            name=_module_name(root, file),
            path=str(file),
            tree=tree,
            annotations=_scan_annotations(source),
            source_lines=source.splitlines(),
        )
        project.modules[module.name] = module

        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                methods: Dict[str, FunctionInfo] = {}
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        fn = FunctionInfo(
                            name=item.name,
                            qualname=f"{node.name}.{item.name}",
                            fid=f"{module.name}.{node.name}.{item.name}",
                            module=module.name,
                            path=module.path,
                            node=item,
                            class_name=node.name,
                            annotation=module.annotations.get(item.lineno),
                        )
                        methods[item.name] = fn
                        project.functions[fn.fid] = fn
                        project.methods_by_name.setdefault(item.name, []).append(fn)
                bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
                info = ClassInfo(
                    name=node.name,
                    module=module.name,
                    path=module.path,
                    node=node,
                    bases=bases,
                    methods=methods,
                    attrs={},
                )
                # First definition wins on (unlikely) name collisions.
                project.classes.setdefault(node.name, info)
            elif isinstance(node, ast.FunctionDef):
                fn = FunctionInfo(
                    name=node.name,
                    qualname=node.name,
                    fid=f"{module.name}.{node.name}",
                    module=module.name,
                    path=module.path,
                    node=node,
                    class_name=None,
                    annotation=module.annotations.get(node.lineno),
                )
                project.functions[fn.fid] = fn
                project.module_functions.setdefault(node.name, []).append(fn)

    # Subclass index (project bases only).
    for info in project.classes.values():
        for base in info.bases:
            if base in project.classes:
                project.subclasses.setdefault(base, []).append(info.name)

    # Pass 2: attribute maps (needs the full symbol table for inference).
    for info in project.classes.values():
        init = info.methods.get("__init__")
        if init is not None:
            info.attrs = _collect_attrs(project, info, init, project.modules[info.module])

    return project


def reset_closure(project: ProjectModel, class_name: str) -> Tuple[Set[str], AttrUseScanner]:
    """Methods reachable from the class's reset hooks via self-calls.

    Returns ``(method names, merged scan)`` where the scan aggregates
    resets / clears / cascades observed across the whole closure.
    """
    merged = AttrUseScanner()
    hooks = project.reset_hooks(class_name)
    pending: List[FunctionInfo] = list(hooks)
    visited: Set[str] = set()
    names: Set[str] = set()
    while pending:
        meth = pending.pop()
        if meth.fid in visited:
            continue
        visited.add(meth.fid)
        names.add(meth.name)
        scan = scan_method(meth.node)
        merged.rebinds |= scan.rebinds
        merged.augments |= scan.augments
        merged.mutations |= scan.mutations
        merged.clears |= scan.clears
        merged.cascaded |= scan.cascaded
        for callee in scan.self_calls:
            resolved = project.resolve_method(class_name, callee)
            if resolved is not None:
                pending.append(resolved)
        for callee in scan.super_calls:
            # ``super().m()``: first project base defining ``m`` after the
            # method's own class.
            own = meth.class_name
            mro = project.mro(class_name)
            past_own = False
            for info in mro:
                if info.name == own:
                    past_own = True
                    continue
                if past_own and callee in info.methods:
                    pending.append(info.methods[callee])
                    break
    return names, merged
