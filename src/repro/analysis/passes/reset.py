"""RPR2xx — reset-completeness over the model's component tree.

The simulator's cross-run determinism contract says: after
``begin_run()``/``reset()`` (or a method tagged ``# simcheck:
reset-hook``), a component behaves as if freshly constructed.  PR 1's
cumulative-stats leak and PR 7's L1/MSHR/DRAM carry-over were both
instances of the same bug class — a transient attribute assigned in
``__init__`` that a reset path forgot — so this pass checks the class
directly:

* **RPR201** — a mutable container attribute that some non-reset method
  mutates in place but no reset path re-initializes or ``.clear()``\\ s.
* **RPR202** — a scalar attribute that some non-reset method rebinds but
  no reset path re-initializes (``+=`` never counts as re-initialization:
  it reads the stale value).
* **RPR203** — an attribute holding a component *constructed here* whose
  class has its own reset hook, but which the owner's reset paths neither
  cascade into (``self.x.begin_run()``) nor rebuild.  Attributes received
  from parameters are borrowed — their constructor's owner resets them.

Deliberately-persistent state (cumulative statistics reported via
snapshot/delta, wiring installed once per process) is declared, not
silenced: ``# simcheck: persistent -- reason`` on the ``__init__``
assignment line.  The annotation must justify a live finding or RPR104
flags it as stale.
"""

from __future__ import annotations

from typing import Optional, Set

from ..project import TAG_PERSISTENT, AttrInfo, reset_closure
from .base import AnalysisContext, AnalysisPass

#: Packages whose classes form the simulated model (reset rules apply to
#: every class here that defines at least one reset hook).
RESET_SCOPE_PREFIXES = ("repro.core", "repro.gpu", "repro.memory", "repro.trace")


def _in_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in RESET_SCOPE_PREFIXES)


class ResetCompletenessPass(AnalysisPass):
    name = "reset-completeness"

    def run(self, ctx: AnalysisContext) -> None:
        project = ctx.project
        for class_name, info in sorted(project.classes.items()):
            if not _in_scope(info.module):
                continue
            if not project.has_reset_hook(class_name):
                continue
            attrs = project.flattened_attrs(class_name)
            closure_names, scan = reset_closure(project, class_name)
            reset_attrs = scan.rebinds | scan.clears
            for attr in sorted(attrs.values(), key=lambda a: (a.path, a.lineno)):
                self._check_attr(ctx, class_name, attr, closure_names, reset_attrs, scan.cascaded)

    def _check_attr(
        self,
        ctx: AnalysisContext,
        class_name: str,
        attr: AttrInfo,
        closure_names: Set[str],
        reset_attrs: Set[str],
        cascaded: Set[str],
    ) -> None:
        project = ctx.project
        if attr.annotation is not None and attr.annotation.tag == TAG_PERSISTENT:
            module = self._module_of(ctx, attr.path)
            if module is not None:
                ctx.use(module, attr.lineno)
            return
        if attr.name in reset_attrs:
            return

        # RPR203: owned component with its own reset hook, never cascaded.
        if (
            attr.type is not None
            and attr.owned
            and project.is_project_class(attr.type.cls)
            and project.has_reset_hook(attr.type.cls)
            and attr.name not in cascaded
        ):
            kind = f"{attr.type.container} of {attr.type.cls}" if attr.type.container else attr.type.cls
            ctx.add(
                "RPR203",
                attr.path,
                attr.lineno,
                f"{class_name}.{attr.name} owns a {kind} with a reset hook, "
                "but no reset path cascades into it or rebuilds it",
            )
            return

        mutators = sorted(attr.mutated_in - closure_names, key=str)
        rebinders = sorted(attr.reassigned_in - closure_names, key=str)
        if attr.mutable_container and mutators:
            ctx.add(
                "RPR201",
                attr.path,
                attr.lineno,
                f"{class_name}.{attr.name} is a mutable container mutated in "
                f"{', '.join(mutators)} but never re-initialized in a reset path",
            )
        elif not attr.mutable_container and rebinders:
            ctx.add(
                "RPR202",
                attr.path,
                attr.lineno,
                f"{class_name}.{attr.name} is reassigned in "
                f"{', '.join(rebinders)} but never re-initialized in a reset path",
            )

    @staticmethod
    def _module_of(ctx: AnalysisContext, path: str) -> Optional[str]:
        for name, info in ctx.project.modules.items():
            if info.path == path:
                return name
        return None
