"""simcheck v2 analysis passes: reset-completeness, hot-path, drift.

Importing this package registers the RPR1xx/2xx/3xx rules into the
shared catalog (:func:`repro.analysis.rules.register_rules`);
:func:`run_project_passes` is the ``--check-all`` entry point.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

from ..callgraph import CallGraph
from ..linter import Finding
from ..project import ProjectModel, build_project
from ..rules import Rule, register_rules
from .base import AnalysisContext, AnalysisPass
from .drift import DriftPass
from .hotpath import HotPathPass
from .reset import ResetCompletenessPass

PASS_RULES: List[Rule] = [
    Rule(
        "RPR101",
        "allocation in a cycle-hot function",
        "hoist the allocation out of the per-cycle path or reuse a "
        "preallocated buffer; if the work is inherent to the model, "
        "justify with `# simcheck: hot-ok -- reason`",
    ),
    Rule(
        "RPR102",
        "try/except inside a loop in a cycle-hot function",
        "hoist the try outside the loop, or restructure with a lookup "
        "that cannot raise",
    ),
    Rule(
        "RPR103",
        "deep attribute chain re-read in a cycle-hot function",
        "hoist the chain's prefix into a local once and index through it",
    ),
    Rule(
        "RPR104",
        "stale or unknown simcheck annotation",
        "remove the annotation (it no longer suppresses a finding) or fix "
        "the tag spelling",
    ),
    Rule(
        "RPR201",
        "mutable attribute mutated outside reset paths but never re-initialized",
        "re-initialize or .clear() it in begin_run()/reset(), or declare "
        "`# simcheck: persistent -- reason` on the __init__ assignment",
    ),
    Rule(
        "RPR202",
        "reassigned attribute never re-initialized in a reset path",
        "assign its initial value in begin_run()/reset() (`+=` is not a "
        "re-initialization), or declare `# simcheck: persistent -- reason`",
    ),
    Rule(
        "RPR203",
        "owned component with a reset hook is never cascaded",
        "call self.<attr>.begin_run()/reset() from the owner's reset path "
        "(or rebuild the component there)",
    ),
    Rule(
        "RPR301",
        "versioned model contract changed without acknowledgment",
        "bump the contract's version constant if on-disk artifacts change "
        "meaning, then refresh analysis/contracts.json with "
        "`python -m repro.analysis --update-contracts`",
    ),
    Rule(
        "RPR302",
        "config field is never read by the model",
        "wire the field into the model (or validate it) so sweeps over it "
        "mean something, or delete it",
    ),
    Rule(
        "RPR303",
        "stats declaration out of lockstep with the field list",
        "keep the SMStats construction, conservation tuples and "
        "to_payload() covering every dataclass field",
    ),
]

register_rules(PASS_RULES)

ALL_PASSES: Tuple[AnalysisPass, ...] = (
    ResetCompletenessPass(),
    HotPathPass(),
    DriftPass(),
)


def run_project_passes(root: Path) -> Tuple[ProjectModel, List[Finding]]:
    """Build the project model once and run every pass over it."""
    project = build_project(root)
    graph = CallGraph(project)
    ctx = AnalysisContext(project=project, graph=graph)
    for analysis_pass in ALL_PASSES:
        analysis_pass.run(ctx)
    ctx.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return project, ctx.findings


__all__ = [
    "ALL_PASSES",
    "AnalysisContext",
    "AnalysisPass",
    "DriftPass",
    "HotPathPass",
    "PASS_RULES",
    "ResetCompletenessPass",
    "run_project_passes",
]
