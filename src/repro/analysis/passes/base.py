"""Shared plumbing for simcheck v2 analysis passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..callgraph import CallGraph
from ..linter import Finding
from ..project import ProjectModel


@dataclass
class AnalysisContext:
    """One ``--check-all`` run's shared state.

    Passes append :class:`Finding`\\ s through :meth:`add` (which de-dupes
    identical findings re-derived through different subclasses) and record
    each ``# simcheck:`` annotation they honour through :meth:`use` so the
    hygiene check can flag stale annotations afterwards.
    """

    project: ProjectModel
    graph: CallGraph
    findings: List[Finding] = field(default_factory=list)
    used_annotations: Set[Tuple[str, int]] = field(default_factory=set)
    _seen: Set[Tuple[str, str, int, str]] = field(default_factory=set)

    def add(
        self,
        rule_id: str,
        path: str,
        line: int,
        message: str,
        col: int = 0,
        suppressed: bool = False,
    ) -> None:
        key = (rule_id, path, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule_id=rule_id,
                path=path,
                line=line,
                col=col,
                message=message,
                suppressed=suppressed,
            )
        )

    def use(self, module: str, line: int) -> None:
        self.used_annotations.add((module, line))

    def used(self, module: str, line: int) -> bool:
        return (module, line) in self.used_annotations


class AnalysisPass:
    """Base class: a named whole-program check."""

    name: str = "pass"

    def run(self, ctx: AnalysisContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError
