"""RPR1xx — hot-path discipline over the cycle-hot call graph.

PRs 6–7 bought their 1.27–1.61x by removing per-cycle allocation and
attribute chasing from ``GPU._advance`` → ``SM.step`` → ``SubCore.issue``.
This pass keeps those wins: it computes the static call graph rooted at
those three functions, restricted to the model packages, and flags inside
every reachable ("cycle-hot") function:

* **RPR101** — allocation: list/dict/set displays, comprehensions and
  generator expressions, mutable-factory calls (``list()``, ``dict()``,
  ``OrderedDict()``, …), ``sorted()``, project-class constructions,
  ``[x] * n``, lambdas and nested ``def``\\ s (closure objects).
* **RPR102** — ``try``/``except`` inside a loop (exception-table setup
  and handler dispatch per iteration).
* **RPR103** — the same ≥2-hop attribute chain (``self.a.b.c``) read three
  or more times in one function; hoist the prefix into a local.

Regions that only run with observability enabled — ``if`` blocks whose
test mentions a tracer/sanitizer/debug hook — and ``raise``/``assert``
statements are excluded: they are off on measured runs.  Inherent
per-cycle work (a scheduler policy that must materialize a sorted pool)
is accepted with ``# simcheck: hot-ok -- reason`` on the offending line,
or on the ``def`` line to accept a whole function.  **RPR104** then keeps
the annotations honest: a ``hot-ok``/``persistent`` tag that no longer
suppresses a live finding — or an unknown tag — is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..callgraph import _mentions_cold_marker
from ..project import (
    KNOWN_TAGS,
    MUTABLE_FACTORIES,
    TAG_HOT_OK,
    TAG_PERSISTENT,
    FunctionInfo,
    ProjectModel,
)
from .base import AnalysisContext, AnalysisPass

#: (class, method) roots of the per-cycle path.
HOT_ROOTS = (
    ("GPU", "_advance"),
    ("StreamingMultiprocessor", "step"),
    ("SubCore", "issue"),
)

#: Packages whose functions can be cycle-hot (observability and analysis
#: tooling are excluded by construction).
HOT_PREFIXES = ("repro.core", "repro.gpu", "repro.memory", "repro.trace", "repro.isa", "repro.regalloc")

#: RPR103 fires when one chain is re-read at least this many times.
CHAIN_THRESHOLD = 3


def find_hot_roots(project: ProjectModel) -> List[str]:
    roots: List[str] = []
    for class_name, method in HOT_ROOTS:
        for fn in project.methods_by_name.get(method, ()):
            if fn.class_name == class_name:
                roots.append(fn.fid)
    return roots


def hot_functions(ctx: AnalysisContext) -> List[FunctionInfo]:
    """Cycle-hot functions: reachable from the roots via non-cold edges."""
    reachable = ctx.graph.reachable(
        find_hot_roots(ctx.project), module_prefixes=HOT_PREFIXES, skip_cold=True
    )
    return sorted(
        (ctx.project.functions[fid] for fid in reachable),
        key=lambda fn: (fn.path, fn.node.lineno),
    )


class _HotScanner:
    """Collect RPR101/102/103 sites in one function, skipping cold regions."""

    def __init__(self, project: ProjectModel, fn: FunctionInfo):
        self.project = project
        self.fn = fn
        self.allocations: List[Tuple[int, str]] = []
        self.try_in_loop: List[int] = []
        self.chains: Dict[str, List[int]] = {}

    # -- drivers -----------------------------------------------------------

    def scan(self) -> None:
        self._block(self.fn.node.body, in_loop=False)

    def _block(self, body: List[ast.stmt], in_loop: bool) -> None:
        for stmt in body:
            self._stmt(stmt, in_loop)

    def _stmt(self, stmt: ast.stmt, in_loop: bool) -> None:
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return  # error paths terminate the run; not cycle-rate work
        if isinstance(stmt, ast.If):
            if not _mentions_cold_marker(stmt.test):
                self._expr(stmt.test)
                self._block(stmt.body, in_loop)
            self._block(stmt.orelse, in_loop)
            return
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._expr(stmt.iter)
            else:
                self._expr(stmt.test)
            self._block(stmt.body, in_loop=True)
            self._block(stmt.orelse, in_loop)
            return
        if isinstance(stmt, ast.Try):
            if in_loop:
                self.try_in_loop.append(stmt.lineno)
            self._block(stmt.body, in_loop)
            for handler in stmt.handlers:
                self._block(handler.body, in_loop)
            self._block(stmt.orelse, in_loop)
            self._block(stmt.finalbody, in_loop)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.allocations.append((stmt.lineno, f"nested def {stmt.name}() builds a closure"))
            return
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._expr(node)
            elif isinstance(node, ast.stmt):
                self._stmt(node, in_loop)

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.expr) -> None:
        self._visit_expr(expr)

    def _visit_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Attribute):
            chain = self._chain_text(node)
            if chain is not None:
                # Record the maximal chain only; don't recurse into its
                # spine (that would double-count every prefix).
                self.chains.setdefault(chain, []).append(node.lineno)
            else:
                self._visit_expr(node.value)
            return
        if isinstance(node, ast.Set):
            # Unlike List, Set has no ``ctx`` — a set display is always a load.
            self.allocations.append((node.lineno, "set display allocates per call"))
        elif isinstance(node, ast.List):
            if isinstance(node.ctx, ast.Load):
                self.allocations.append((node.lineno, "list display allocates per call"))
        elif isinstance(node, ast.Dict):
            self.allocations.append((node.lineno, "dict display allocates per call"))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            kind = {
                ast.ListComp: "list comprehension",
                ast.SetComp: "set comprehension",
                ast.DictComp: "dict comprehension",
                ast.GeneratorExp: "generator expression",
            }[type(node)]
            self.allocations.append((node.lineno, f"{kind} allocates per evaluation"))
            # comprehension bodies are part of the allocation; don't recurse.
            return
        elif isinstance(node, ast.Lambda):
            self.allocations.append((node.lineno, "lambda builds a closure object"))
            return
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            if isinstance(node.left, ast.List) or isinstance(node.right, ast.List):
                self.allocations.append((node.lineno, "[x] * n allocates a fresh list"))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                if name in MUTABLE_FACTORIES:
                    self.allocations.append((node.lineno, f"{name}() allocates per call"))
                elif name == "sorted":
                    self.allocations.append((node.lineno, "sorted() builds a fresh list"))
                elif self.project.is_project_class(name):
                    self.allocations.append((node.lineno, f"constructs {name} per call"))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.keyword):
                # keyword arguments are not ``ast.expr`` nodes themselves;
                # without this, ``x.sort(key=lambda ...)`` hides the lambda.
                self._visit_expr(child.value)

    def _chain_text(self, node: ast.Attribute) -> Optional[str]:
        """Dotted text of a ≥2-hop read chain rooted at a bare name."""
        if not isinstance(node.ctx, ast.Load):
            return None
        parts: List[str] = [node.attr]
        cur: ast.expr = node.value
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name) or len(parts) < 2:
            return None
        parts.append(cur.id)
        return ".".join(reversed(parts))


class HotPathPass(AnalysisPass):
    name = "hot-path"

    def run(self, ctx: AnalysisContext) -> None:
        for fn in hot_functions(ctx):
            self._check_function(ctx, fn)
        self._check_annotations(ctx)

    # -- per-function ------------------------------------------------------

    def _accepted(self, ctx: AnalysisContext, fn: FunctionInfo, line: int) -> bool:
        ann = ctx.project.annotation_at(fn.module, line)
        if ann is not None and ann.tag == TAG_HOT_OK:
            ctx.use(fn.module, line)
            return True
        if fn.annotation is not None and fn.annotation.tag == TAG_HOT_OK:
            ctx.use(fn.module, fn.node.lineno)
            return True
        return False

    def _check_function(self, ctx: AnalysisContext, fn: FunctionInfo) -> None:
        scanner = _HotScanner(ctx.project, fn)
        scanner.scan()
        for line, what in scanner.allocations:
            if self._accepted(ctx, fn, line):
                continue
            ctx.add(
                "RPR101",
                fn.path,
                line,
                f"cycle-hot {fn.qualname}(): {what}",
            )
        for line in scanner.try_in_loop:
            if self._accepted(ctx, fn, line):
                continue
            ctx.add(
                "RPR102",
                fn.path,
                line,
                f"cycle-hot {fn.qualname}(): try/except inside a loop",
            )
        for chain, lines in sorted(scanner.chains.items()):
            if len(lines) < CHAIN_THRESHOLD:
                continue
            line = min(lines)
            if self._accepted(ctx, fn, line):
                continue
            prefix = chain.rsplit(".", 1)[0]
            ctx.add(
                "RPR103",
                fn.path,
                line,
                f"cycle-hot {fn.qualname}(): attribute chain '{chain}' read "
                f"{len(lines)}x; hoist '{prefix}' into a local",
            )

    # -- annotation hygiene (RPR104) ---------------------------------------

    def _check_annotations(self, ctx: AnalysisContext) -> None:
        for module in sorted(ctx.project.modules):
            info = ctx.project.modules[module]
            for line in sorted(info.annotations):
                ann = info.annotations[line]
                if ann.tag not in KNOWN_TAGS:
                    ctx.add(
                        "RPR104",
                        info.path,
                        line,
                        f"unknown simcheck tag '{ann.tag}' "
                        f"(known: {', '.join(sorted(KNOWN_TAGS))})",
                    )
                elif ann.tag in (TAG_HOT_OK, TAG_PERSISTENT) and not ctx.used(module, line):
                    ctx.add(
                        "RPR104",
                        info.path,
                        line,
                        f"stale '# simcheck: {ann.tag}' annotation: it no "
                        "longer suppresses any finding; remove it",
                    )
