"""RPR3xx — version/schema drift and declaration-coverage checks.

Three cache/schema version constants guard on-disk artifacts whose
staleness is *silent* — a stale compiled trace or result-cache entry
doesn't crash, it quietly reproduces old behaviour:

* ``CODE_VERSION`` (``repro/trace/code_cache.py``) over the compiled
  representation (``repro/trace/compiled.py``),
* ``PROFILE_VERSION`` (``repro/workloads/profiles.py``) over the profile
  payload and the profile → trace synthesizer,
* ``CACHE_SCHEMA`` (``repro/experiments/engine.py``) over the result
  payload (``SimStats.to_payload`` in ``repro/metrics/stats.py``),
* ``EVENT_SCHEMA_VERSION`` (``repro/obs/events.py``) over the trace-event
  schema consumed by external tooling,
* ``MANIFEST_SCHEMA_VERSION`` (``repro/obs/manifest.py``) over run-manifest
  records (``repro.obs --validate`` rejects unknown versions),
* ``METRICS_SCHEMA_VERSION`` (``repro/obs/metrics.py``) over the canonical
  metrics JSON export and its validators,
* ``STATUS_SCHEMA_VERSION`` (``repro/obs/heartbeat.py``) over the live
  ``status.json`` heartbeat document.

**RPR301** hashes each contract's watched sources (comment-stripped,
whitespace-normalized — stable across Python versions) into
``analysis/contracts.json``.  A watched file changing without a matching
manifest refresh fails the check: bump the version constant if the
on-disk artifacts change meaning, then acknowledge with
``python -m repro.analysis --update-contracts`` (the manifest diff makes
the acknowledgment reviewable).

**RPR302** flags a ``GPUConfig``/``MemoryConfig`` field that no code ever
reads — unread config is a lie in every sweep definition (the field
*looks* like a model parameter but cannot affect results).

**RPR303** keeps the stats surface self-consistent: the ``SMStats``
construction in ``GPU._collect_stats`` must pass every field, the
conservation-check counter tuples must name real fields, and
``to_payload`` must serialize every field (a dropped field silently
truncates every cached result).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..project import ClassInfo, ProjectModel
from .base import AnalysisContext, AnalysisPass

MANIFEST_RELPATH = Path("analysis") / "contracts.json"
MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class Contract:
    """One versioned model contract: a constant + the sources it covers."""

    name: str
    version_file: str     # package-relative path holding the constant
    version_name: str
    watch: Tuple[str, ...]  # package-relative watched sources


CONTRACTS: Tuple[Contract, ...] = (
    Contract(
        "compiled-trace",
        "trace/code_cache.py",
        "CODE_VERSION",
        ("trace/compiled.py", "trace/code_cache.py"),
    ),
    Contract(
        "profile-payload",
        "workloads/profiles.py",
        "PROFILE_VERSION",
        ("workloads/profiles.py", "workloads/synth.py"),
    ),
    Contract(
        "result-cache",
        "experiments/engine.py",
        "CACHE_SCHEMA",
        ("metrics/stats.py",),
    ),
    Contract(
        "obs-events",
        "obs/events.py",
        "EVENT_SCHEMA_VERSION",
        ("obs/events.py",),
    ),
    Contract(
        "run-manifest",
        "obs/manifest.py",
        "MANIFEST_SCHEMA_VERSION",
        ("obs/manifest.py",),
    ),
    Contract(
        "obs-metrics",
        "obs/metrics.py",
        "METRICS_SCHEMA_VERSION",
        ("obs/metrics.py",),
    ),
    Contract(
        "run-status",
        "obs/heartbeat.py",
        "STATUS_SCHEMA_VERSION",
        ("obs/heartbeat.py",),
    ),
    Contract(
        "run-journal",
        "obs/journal.py",
        "JOURNAL_SCHEMA_VERSION",
        ("obs/journal.py",),
    ),
)


# -- hashing ------------------------------------------------------------------


def normalized_source(source: str) -> str:
    """Source text minus comments, trailing whitespace and blank lines.

    Token-based comment stripping (not ``ast.dump``) keeps the hash
    stable across CPython minor versions, so one committed manifest
    serves every CI interpreter.
    """
    lines = source.splitlines()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                row, col = tok.start
                lines[row - 1] = lines[row - 1][:col]
    except (tokenize.TokenError, IndentationError):
        pass  # syntactically broken files are RPR000's problem
    return "\n".join(line.rstrip() for line in lines if line.strip())


def contract_hash(root: Path, contract: Contract) -> str:
    digest = hashlib.sha256()
    for rel in sorted(contract.watch):
        file = root / rel
        text = file.read_text(encoding="utf-8") if file.exists() else ""
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(normalized_source(text).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def read_version(root: Path, contract: Contract) -> Tuple[Optional[int], int]:
    """(value, line) of the contract's version constant; value None if absent."""
    file = root / contract.version_file
    if not file.exists():
        return None, 1
    tree = ast.parse(file.read_text(encoding="utf-8"))
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == contract.version_name
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                return node.value.value, node.lineno
    return None, 1


def current_contracts(root: Path) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for contract in CONTRACTS:
        version, _ = read_version(root, contract)
        out[contract.name] = {
            "version": version,
            "hash": contract_hash(root, contract),
            "watch": sorted(contract.watch),
        }
    return out


def manifest_path(root: Path) -> Path:
    return root / MANIFEST_RELPATH


def write_manifest(root: Path) -> Path:
    path = manifest_path(root)
    payload = {"schema": MANIFEST_SCHEMA, "contracts": current_contracts(root)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_manifest(root: Path) -> Optional[Dict[str, Dict[str, object]]]:
    path = manifest_path(root)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    contracts = payload.get("contracts")
    return contracts if isinstance(contracts, dict) else None


# -- the pass -----------------------------------------------------------------


class DriftPass(AnalysisPass):
    name = "contract-drift"

    def run(self, ctx: AnalysisContext) -> None:
        self._check_contracts(ctx)
        self._check_config_coverage(ctx)
        self._check_stats_declarations(ctx)

    # -- RPR301 ------------------------------------------------------------

    def _check_contracts(self, ctx: AnalysisContext) -> None:
        root = ctx.project.root
        manifest = load_manifest(root)
        for contract in CONTRACTS:
            version, line = read_version(root, contract)
            version_path = str(root / contract.version_file)
            if version is None:
                ctx.add(
                    "RPR301",
                    version_path,
                    line,
                    f"contract '{contract.name}': version constant "
                    f"{contract.version_name} not found in {contract.version_file}",
                )
                continue
            if manifest is None:
                ctx.add(
                    "RPR301",
                    version_path,
                    line,
                    f"contract '{contract.name}': manifest "
                    f"{MANIFEST_RELPATH} missing; generate it with "
                    "python -m repro.analysis --update-contracts",
                )
                continue
            entry = manifest.get(contract.name)
            if not isinstance(entry, dict):
                ctx.add(
                    "RPR301",
                    version_path,
                    line,
                    f"contract '{contract.name}' missing from the manifest; "
                    "refresh with --update-contracts",
                )
                continue
            current = contract_hash(root, contract)
            if entry.get("version") != version:
                ctx.add(
                    "RPR301",
                    version_path,
                    line,
                    f"contract '{contract.name}': {contract.version_name} is "
                    f"{version} but the manifest records "
                    f"{entry.get('version')}; refresh with --update-contracts",
                )
            elif entry.get("hash") != current:
                ctx.add(
                    "RPR301",
                    version_path,
                    line,
                    f"contract '{contract.name}': watched sources "
                    f"({', '.join(sorted(contract.watch))}) changed without a "
                    f"manifest refresh — bump {contract.version_name} if "
                    "on-disk artifacts change meaning, then run "
                    "--update-contracts",
                )

    # -- RPR302 ------------------------------------------------------------

    def _check_config_coverage(self, ctx: AnalysisContext) -> None:
        project = ctx.project
        read_attrs = self._all_attribute_reads(project)
        for class_name in ("GPUConfig", "MemoryConfig"):
            info = project.classes.get(class_name)
            if info is None or not info.module.endswith("config.gpu_config"):
                continue
            for field_name, lineno in self._dataclass_fields(info):
                if field_name not in read_attrs:
                    ctx.add(
                        "RPR302",
                        info.path,
                        lineno,
                        f"{class_name}.{field_name} is never read anywhere in "
                        "the package: the field cannot affect results",
                    )

    @staticmethod
    def _all_attribute_reads(project: ProjectModel) -> Set[str]:
        reads: Set[str] = set()
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                    reads.add(node.attr)
        return reads

    @staticmethod
    def _dataclass_fields(info: ClassInfo) -> List[Tuple[str, int]]:
        fields: List[Tuple[str, int]] = []
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                ann = ast.dump(stmt.annotation)
                if "ClassVar" in ann:
                    continue
                fields.append((stmt.target.id, stmt.lineno))
        return fields

    # -- RPR303 ------------------------------------------------------------

    def _check_stats_declarations(self, ctx: AnalysisContext) -> None:
        project = ctx.project
        sm_stats = project.classes.get("SMStats")
        sim_stats = project.classes.get("SimStats")
        if sm_stats is None or not sm_stats.module.endswith("metrics.stats"):
            return
        sm_fields = [name for name, _ in self._dataclass_fields(sm_stats)]
        self._check_construction(ctx, sm_fields)
        for info in (sm_stats, sim_stats):
            if info is None:
                continue
            fields = [name for name, _ in self._dataclass_fields(info)]
            self._check_conservation_tuples(ctx, info, fields)
            self._check_payload(ctx, info, fields)

    def _check_construction(self, ctx: AnalysisContext, fields: List[str]) -> None:
        """``GPU._collect_stats`` must pass every SMStats field explicitly."""
        project = ctx.project
        gpu = project.classes.get("GPU")
        if gpu is None:
            return
        for meth in gpu.methods.values():
            for node in ast.walk(meth.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "SMStats"
                ):
                    provided = {kw.arg for kw in node.keywords if kw.arg is not None}
                    provided.update(fields[: len(node.args)])
                    missing = [f for f in fields if f not in provided]
                    if missing:
                        ctx.add(
                            "RPR303",
                            gpu.path,
                            node.lineno,
                            f"SMStats construction in {gpu.name}.{meth.name} "
                            f"omits field(s) {', '.join(missing)}; per-SM "
                            "results would silently default",
                        )
                    return
        ctx.add(
            "RPR303",
            gpu.path,
            gpu.node.lineno,
            "no SMStats construction found in GPU; the stats-assembly "
            "declaration check lost its anchor",
        )

    def _check_conservation_tuples(
        self, ctx: AnalysisContext, info: ClassInfo, fields: List[str]
    ) -> None:
        meth = info.methods.get("conservation_errors")
        if meth is None:
            ctx.add(
                "RPR303",
                info.path,
                info.node.lineno,
                f"{info.name} has no conservation_errors(); the sanitizer's "
                "conservation contract lost its anchor",
            )
            return
        field_set = set(fields)
        for node in ast.walk(meth.node):
            if isinstance(node, ast.For) and isinstance(node.iter, ast.Tuple):
                names = [
                    elt.value
                    for elt in node.iter.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ]
                for name in names:
                    if name not in field_set:
                        ctx.add(
                            "RPR303",
                            info.path,
                            node.lineno,
                            f"{info.name}.conservation_errors checks "
                            f"'{name}', which is not a {info.name} field "
                            "(renamed without updating the declaration?)",
                        )

    def _check_payload(self, ctx: AnalysisContext, info: ClassInfo, fields: List[str]) -> None:
        meth = info.methods.get("to_payload")
        if meth is None:
            ctx.add(
                "RPR303",
                info.path,
                info.node.lineno,
                f"{info.name} has no to_payload(); the cache-serialization "
                "declaration check lost its anchor",
            )
            return
        keys: Set[str] = set()
        for node in ast.walk(meth.node):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
                    keys.add(node.slice.value)
        missing = [f for f in fields if f not in keys]
        if missing:
            ctx.add(
                "RPR303",
                info.path,
                meth.node.lineno,
                f"{info.name}.to_payload omits field(s) "
                f"{', '.join(missing)}; cached results would silently drop "
                "them",
            )
