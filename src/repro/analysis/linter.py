"""The determinism linter driver: files in, findings out.

Wraps :mod:`repro.analysis.rules` with the file plumbing a CI gate needs:
directory walking, per-line ``# simlint: ignore[RPRxxx]`` suppressions,
stable ordering of findings, and the two output formats (human lines and
GitHub Actions ``::error`` annotations).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from .rules import RULES, check_tree, get_rule

#: ``# simlint: ignore`` or ``# simlint: ignore[RPR001,RPR002]``
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, located and (possibly) suppressed."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    @property
    def hint(self) -> str:
        rule = get_rule(self.rule_id)
        return rule.hint if rule is not None else "fix the parse error first"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} "
            f"{self.message} (fix: {self.hint})"
        )

    def format_github(self) -> str:
        """GitHub Actions workflow-command annotation for this finding."""
        message = f"{self.message} (fix: {self.hint})".replace("\n", " ")
        return (
            f"::error file={self.path},line={self.line},col={self.col + 1},"
            f"title=simlint {self.rule_id}::{message}"
        )


@dataclass
class LintReport:
    """All findings over a set of files."""

    findings: List[Finding]
    files_scanned: int
    #: Suppression comments were ignored for this report (see ``lint_paths``).
    strict: bool = False

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def summary(self) -> str:
        mode = "simlint (strict)" if self.strict else "simlint"
        return (
            f"{mode}: {len(self.unsuppressed)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_scanned} file(s) scanned"
        )


def _suppressions_for_line(source_line: str) -> Optional[Set[str]]:
    """Rule IDs suppressed on this line; empty set means *all* rules."""
    match = _SUPPRESS_RE.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip() for r in rules.split(",") if r.strip()}


def lint_source(source: str, path: str = "<string>", strict: bool = False) -> List[Finding]:
    """Lint one module's source text.

    ``strict`` ignores ``# simlint: ignore`` comments — every finding
    counts.  Used to hold designated subtrees (e.g. ``src/repro/obs``)
    to a suppression-free standard.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        return [
            Finding(
                rule_id="RPR000",
                path=path,
                line=line,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    findings: List[Finding] = []
    for raw in check_tree(tree):
        source_line = lines[raw.line - 1] if 0 < raw.line <= len(lines) else ""
        suppressed_rules = _suppressions_for_line(source_line)
        suppressed = (
            not strict
            and suppressed_rules is not None
            and (not suppressed_rules or raw.rule_id in suppressed_rules)
        )
        findings.append(
            Finding(
                rule_id=raw.rule_id,
                path=path,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                suppressed=suppressed,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
    return out


def lint_paths(paths: Sequence[str], strict: bool = False) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    With ``strict=True`` every finding is reported unsuppressed, so the
    report fails if the tree needs *any* ``# simlint: ignore`` comment.
    """
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file), strict=strict))
    return LintReport(findings=findings, files_scanned=len(files), strict=strict)


def rule_listing() -> str:
    """Human-readable table of every rule (used by --list-rules and docs).

    Includes pass-owned RPR1xx/2xx/3xx rules when
    :mod:`repro.analysis.passes` has been imported (the CLI always does).
    """
    from .rules import all_rules

    catalog = all_rules()
    lines = []
    for rule_id in sorted(catalog):
        rule = catalog[rule_id]
        lines.append(f"{rule_id}  {rule.summary}")
        lines.append(f"        fix: {rule.hint}")
    return "\n".join(lines)
