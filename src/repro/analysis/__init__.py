"""Static and dynamic correctness checking for the simulator ("simcheck").

Two halves, one contract (see ``docs/determinism.md``):

* :mod:`repro.analysis.linter` — an AST-based **determinism linter**
  (rules RPR001..RPR006) that flags the hazard classes known to corrupt
  cycle-level simulation results: hash-ordered iteration, unkeyed sorts of
  hash-derived containers, unseeded RNG use, wall-clock reads, ``id()`` /
  ``hash()`` values, and mutable default arguments.
* :mod:`repro.analysis.invariants` — an opt-in **runtime invariant
  sanitizer** (``GPUConfig.sanitize=True``) installing per-cycle
  conservation checks across the core model; violations raise a
  structured :class:`InvariantViolation` naming the cycle, SM, sub-core
  and counter.

Run both from the command line::

    python -m repro.analysis --lint src/repro      # static gate (CI)
    python -m repro.analysis --sanitize-smoke      # dynamic gate (CI)

The sanitizer smoke grid lives in :mod:`repro.analysis.smoke`; it is
imported lazily because it pulls in the whole simulator, while the linter
half must stay importable from :mod:`repro.core` without cycles.
"""

from .invariants import InvariantViolation, Sanitizer
from .linter import Finding, LintReport, lint_paths, lint_source
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintReport",
    "RULES",
    "Rule",
    "Sanitizer",
    "lint_paths",
    "lint_source",
]
