"""Static and dynamic correctness checking for the simulator ("simcheck").

Three layers, one contract (see ``docs/determinism.md`` and
``docs/static_analysis.md``):

* :mod:`repro.analysis.linter` — an AST-based **determinism linter**
  (rules RPR001..RPR006) that flags the hazard classes known to corrupt
  cycle-level simulation results: hash-ordered iteration, unkeyed sorts of
  hash-derived containers, unseeded RNG use, wall-clock reads, ``id()`` /
  ``hash()`` values, and mutable default arguments.
* :mod:`repro.analysis.passes` — **whole-program analysis passes** over a
  shared project model (:mod:`~repro.analysis.project`) and call graph
  (:mod:`~repro.analysis.callgraph`): RPR1xx hot-path discipline, RPR2xx
  reset-completeness, RPR3xx version/schema drift.  Findings export as
  text, GitHub annotations and SARIF (:mod:`~repro.analysis.sarif`).
* :mod:`repro.analysis.invariants` — an opt-in **runtime invariant
  sanitizer** (``GPUConfig.sanitize=True``) installing per-cycle
  conservation checks across the core model; violations raise a
  structured :class:`InvariantViolation` naming the cycle, SM, sub-core
  and counter.

Run them from the command line::

    python -m repro.analysis --lint src/repro       # determinism gate (CI)
    python -m repro.analysis --check-all src/repro  # whole-program gate (CI)
    python -m repro.analysis --sanitize-smoke       # dynamic gate (CI)

The sanitizer smoke grid lives in :mod:`repro.analysis.smoke`; it and the
whole-program passes are imported lazily because they pull in more of the
package, while the linter half must stay importable from
:mod:`repro.core` without cycles.
"""

from .invariants import InvariantViolation, Sanitizer
from .linter import Finding, LintReport, lint_paths, lint_source
from .rules import RULES, Rule, all_rules, get_rule, register_rules

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintReport",
    "RULES",
    "Rule",
    "Sanitizer",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rules",
]
