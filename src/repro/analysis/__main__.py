"""Command-line entry point for simcheck (the repro.analysis gates).

Usage::

    python -m repro.analysis --lint [PATH ...]     # determinism linter
    python -m repro.analysis --sanitize-smoke      # runtime invariant grid
    python -m repro.analysis --list-rules          # rule reference

Lint options:

    --github        emit GitHub Actions ::error annotations in addition to
                    the human-readable lines (auto-enabled when the
                    GITHUB_ACTIONS environment variable is set)
    --strict        ignore ``# simlint: ignore`` suppressions — every
                    finding fails the run.  Used by CI to hold
                    ``src/repro/obs`` to a suppression-free standard.

Smoke options:

    --apps A,B,C    comma-separated workload names (default cg-lou,
                    pb-sgemm, tpcU-q8)
    --designs X,Y   comma-separated design names (default baseline, srr,
                    rba)
    --num-sms N     SMs per simulated GPU (default 1)

With no PATH, ``--lint`` checks the installed ``repro`` package sources.
Exit status: 0 clean, 1 findings / violations, 2 usage error.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from .linter import lint_paths, rule_listing


def _lint(paths: List[str], github: bool, strict: bool = False) -> int:
    if not paths:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    report = lint_paths(paths, strict=strict)
    for finding in report.unsuppressed:
        print(finding.format())
        if github:
            print(finding.format_github())
    print(report.summary())
    return 0 if report.ok else 1


def _sanitize_smoke(apps: Optional[str], designs: Optional[str], num_sms: int) -> int:
    from .invariants import InvariantViolation
    from .smoke import DEFAULT_APPS, DEFAULT_DESIGNS, run_smoke_grid

    app_list = [a for a in (apps or ",".join(DEFAULT_APPS)).split(",") if a]
    design_list = [d for d in (designs or ",".join(DEFAULT_DESIGNS)).split(",") if d]
    try:
        report = run_smoke_grid(app_list, design_list, num_sms=num_sms)
    except InvariantViolation as exc:
        print(f"sanitize-smoke: FAILED\n{exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    if not args:
        # Bare ``python -m repro.analysis``: lint the installed package.
        return _lint([], bool(os.environ.get("GITHUB_ACTIONS")))

    mode: Optional[str] = None
    paths: List[str] = []
    github = bool(os.environ.get("GITHUB_ACTIONS"))
    strict = False
    apps: Optional[str] = None
    designs: Optional[str] = None
    num_sms = 1

    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--lint":
            mode = "lint"
        elif arg == "--sanitize-smoke":
            mode = "smoke"
        elif arg == "--list-rules":
            mode = "rules"
        elif arg == "--github":
            github = True
        elif arg == "--strict":
            strict = True
        elif arg.startswith(("--apps", "--designs", "--num-sms")):
            flag, sep, value = arg.partition("=")
            if not sep:
                i += 1
                if i >= len(args):
                    print(f"{flag} requires a value", file=sys.stderr)
                    return 2
                value = args[i]
            if flag == "--apps":
                apps = value
            elif flag == "--designs":
                designs = value
            else:
                try:
                    num_sms = int(value)
                except ValueError:
                    print(f"--num-sms expects an integer, got {value!r}", file=sys.stderr)
                    return 2
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1

    if mode == "rules":
        print(rule_listing())
        return 0
    if mode == "smoke":
        return _sanitize_smoke(apps, designs, num_sms)
    if mode == "lint":
        return _lint(paths, github, strict=strict)
    print("choose a mode: --lint, --sanitize-smoke or --list-rules", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
