"""Command-line entry point for simcheck (the repro.analysis gates).

Usage::

    python -m repro.analysis --lint [PATH ...]       # determinism linter
    python -m repro.analysis --check-all [PKG_DIR]   # linter + whole-program passes
    python -m repro.analysis --update-contracts [PKG_DIR]  # refresh contracts.json
    python -m repro.analysis --sanitize-smoke        # runtime invariant grid
    python -m repro.analysis --list-rules            # rule reference

Lint / check-all options:

    --github        emit GitHub Actions ::error annotations in addition to
                    the human-readable lines (auto-enabled when the
                    GITHUB_ACTIONS environment variable is set)
    --strict        ``--lint``: ignore ``# simlint: ignore`` suppressions.
                    ``--check-all``: additionally ignore ``--baseline``
                    (structured ``# simcheck:`` annotations still count —
                    they carry a reviewable justification, unlike a bare
                    ignore).
    --sarif FILE    also write the findings as a SARIF 2.1.0 log
    --baseline FILE suppress findings recorded in a baseline file
    --write-baseline FILE  record current findings as the new baseline

``--check-all`` takes at most one PATH: the package directory to analyse
(default: the installed ``repro`` package).  It runs the RPR0xx
determinism linter plus the whole-program passes — RPR1xx hot-path
discipline, RPR2xx reset-completeness, RPR3xx contract drift — over one
shared project model.  See docs/static_analysis.md.

Smoke options:

    --apps A,B,C    comma-separated workload names (default cg-lou,
                    pb-sgemm, tpcU-q8)
    --designs X,Y   comma-separated design names (default baseline, srr,
                    rba)
    --num-sms N     SMs per simulated GPU (default 1)

With no PATH, ``--lint`` checks the installed ``repro`` package sources.
Exit status: 0 clean, 1 findings / violations, 2 usage error.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from .linter import Finding, lint_paths, rule_listing

BASELINE_SCHEMA = 1


def _lint(paths: List[str], github: bool, strict: bool = False) -> int:
    if not paths:
        paths = [_default_package_dir()]
    report = lint_paths(paths, strict=strict)
    for finding in report.unsuppressed:
        print(finding.format())
        if github:
            print(finding.format_github())
    print(report.summary())
    return 0 if report.ok else 1


def _default_package_dir() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _resolve_root(paths: List[str]) -> Optional[Path]:
    if len(paths) > 1:
        print("--check-all/--update-contracts take at most one package dir", file=sys.stderr)
        return None
    root = Path(paths[0]) if paths else Path(_default_package_dir())
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return None
    return root


def baseline_key(finding: Finding) -> str:
    """Stable identity of a finding for the baseline workflow.

    Deliberately excludes the line number (annotations drift as files are
    edited) but keeps the message, which names the offending symbol.
    """
    return f"{finding.rule_id}:{finding.path}:{finding.message}"


def _load_baseline(path: str) -> Optional[set]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {path}: {exc}", file=sys.stderr)
        return None
    entries = payload.get("entries")
    if payload.get("schema") != BASELINE_SCHEMA or not isinstance(entries, list):
        print(f"unrecognized baseline format in {path}", file=sys.stderr)
        return None
    return set(entries)


def _write_baseline(path: str, findings: List[Finding]) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": sorted(dict.fromkeys(baseline_key(f) for f in findings)),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _check_all(
    paths: List[str],
    github: bool,
    strict: bool,
    sarif_path: Optional[str],
    baseline_path: Optional[str],
    write_baseline_path: Optional[str],
) -> int:
    from .passes import run_project_passes
    from .sarif import write_sarif

    root = _resolve_root(paths)
    if root is None:
        return 2
    lint_report = lint_paths([str(root)], strict=strict)
    _, pass_findings = run_project_passes(root)
    findings = sorted(
        lint_report.findings + pass_findings,
        key=lambda f: (f.path, f.line, f.col, f.rule_id),
    )

    failing = [f for f in findings if not f.suppressed]
    if baseline_path is not None and not strict:
        baseline = _load_baseline(baseline_path)
        if baseline is None:
            return 2
        baselined = [f for f in failing if baseline_key(f) in baseline]
        failing = [f for f in failing if baseline_key(f) not in baseline]
    else:
        baselined = []

    for finding in failing:
        print(finding.format())
        if github:
            print(finding.format_github())
    if sarif_path is not None:
        write_sarif(sarif_path, findings)
    if write_baseline_path is not None:
        _write_baseline(write_baseline_path, failing)
        print(f"simcheck: baseline with {len(failing)} entr(ies) written to {write_baseline_path}")
        return 0

    suppressed = len(findings) - len(failing) - len(baselined)
    mode = "simcheck (strict)" if strict else "simcheck"
    print(
        f"{mode}: {len(failing)} finding(s), {suppressed} suppressed, "
        f"{len(baselined)} baselined, {len(project_files(root))} file(s) analysed"
    )
    return 0 if not failing else 1


def project_files(root: Path) -> List[Path]:
    return sorted(root.rglob("*.py"))


def _update_contracts(paths: List[str]) -> int:
    from .passes.drift import write_manifest

    root = _resolve_root(paths)
    if root is None:
        return 2
    manifest = write_manifest(root)
    print(f"simcheck: contracts manifest refreshed at {manifest}")
    return 0


def _sanitize_smoke(apps: Optional[str], designs: Optional[str], num_sms: int) -> int:
    from .invariants import InvariantViolation
    from .smoke import DEFAULT_APPS, DEFAULT_DESIGNS, run_smoke_grid

    app_list = [a for a in (apps or ",".join(DEFAULT_APPS)).split(",") if a]
    design_list = [d for d in (designs or ",".join(DEFAULT_DESIGNS)).split(",") if d]
    try:
        report = run_smoke_grid(app_list, design_list, num_sms=num_sms)
    except InvariantViolation as exc:
        print(f"sanitize-smoke: FAILED\n{exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    if not args:
        # Bare ``python -m repro.analysis``: lint the installed package.
        return _lint([], bool(os.environ.get("GITHUB_ACTIONS")))

    mode: Optional[str] = None
    paths: List[str] = []
    github = bool(os.environ.get("GITHUB_ACTIONS"))
    strict = False
    apps: Optional[str] = None
    designs: Optional[str] = None
    num_sms = 1
    sarif_path: Optional[str] = None
    baseline_path: Optional[str] = None
    write_baseline_path: Optional[str] = None

    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--lint":
            mode = "lint"
        elif arg == "--check-all":
            mode = "check-all"
        elif arg == "--update-contracts":
            mode = "update-contracts"
        elif arg == "--sanitize-smoke":
            mode = "smoke"
        elif arg == "--list-rules":
            mode = "rules"
        elif arg == "--github":
            github = True
        elif arg == "--strict":
            strict = True
        elif arg.startswith(
            ("--apps", "--designs", "--num-sms", "--sarif", "--baseline", "--write-baseline")
        ):
            flag, sep, value = arg.partition("=")
            if not sep:
                i += 1
                if i >= len(args):
                    print(f"{flag} requires a value", file=sys.stderr)
                    return 2
                value = args[i]
            if flag == "--apps":
                apps = value
            elif flag == "--designs":
                designs = value
            elif flag == "--sarif":
                sarif_path = value
            elif flag == "--write-baseline":
                write_baseline_path = value
            elif flag == "--baseline":
                baseline_path = value
            elif flag == "--num-sms":
                try:
                    num_sms = int(value)
                except ValueError:
                    print(f"--num-sms expects an integer, got {value!r}", file=sys.stderr)
                    return 2
            else:
                print(f"unknown option: {flag}", file=sys.stderr)
                return 2
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1

    if mode == "rules":
        from . import passes as _passes  # noqa: F401  (registers RPR1xx-3xx)

        print(rule_listing())
        return 0
    if mode == "smoke":
        return _sanitize_smoke(apps, designs, num_sms)
    if mode == "lint":
        return _lint(paths, github, strict=strict)
    if mode == "check-all":
        return _check_all(paths, github, strict, sarif_path, baseline_path, write_baseline_path)
    if mode == "update-contracts":
        return _update_contracts(paths)
    print(
        "choose a mode: --lint, --check-all, --update-contracts, "
        "--sanitize-smoke or --list-rules",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
