"""Banked shared-memory (scratchpad) timing model.

Shared memory is common to all sub-cores of an SM — it is *why* thread
blocks cannot be split across sub-cores, which drives the imbalance
pathology.  The timing model charges a fixed pipeline latency plus a
serialization term for bank conflicts: a warp access touching ``d`` distinct
words in the same bank takes ``d`` back-to-back bank cycles.

Traces do not carry per-thread shared addresses, so the conflict degree is a
property of the instruction stream: LDS/STS instructions are assumed
conflict-free (degree 1) unless the workload profile marks the kernel with a
higher ``shared_conflict_degree``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SharedMemoryStats:
    accesses: int = 0
    conflict_cycles: int = 0


class SharedMemory:
    def __init__(self, num_banks: int, latency: int = 24) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.num_banks = num_banks
        self.latency = latency
        self.stats = SharedMemoryStats()

    def access(self, now: int, conflict_degree: int = 1) -> int:
        """One warp LDS/STS; returns the completion cycle."""
        if conflict_degree < 1:
            raise ValueError("conflict_degree must be >= 1")
        degree = min(conflict_degree, self.num_banks)
        self.stats.accesses += 1
        self.stats.conflict_cycles += degree - 1
        return now + self.latency + (degree - 1)
