"""Per-warp memory access coalescing.

Traces record the coalescing *outcome* of each warp memory instruction
(``MemRef.num_lines``); the coalescer expands that into the individual line
transactions the caches see.  Consecutive lines starting at the base address
model a strided/unit-stride pattern; this is all the cache model needs.
"""

from __future__ import annotations

from typing import List

from ..isa import MemRef
from .request import MemoryRequest


class Coalescer:
    """Expands a warp memory reference into per-line transactions."""

    def __init__(self, line_bytes: int) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        self.line_bytes = line_bytes

    def expand(self, mem: MemRef) -> List[MemoryRequest]:
        base_line = mem.base_address // self.line_bytes
        return [  # simcheck: hot-ok -- one request list per warp memory instruction, not per cycle
            MemoryRequest(line_address=base_line + i, is_store=mem.is_store)
            for i in range(mem.num_lines)
        ]
