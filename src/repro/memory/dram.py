"""Bandwidth-limited fixed-latency HBM model.

DRAM is modelled as ``num_channels`` independently scheduled channels with
a base access latency and a per-channel service rate of
``bytes_per_cycle``; each line transaction occupies its channel for
``line_bytes / bytes_per_cycle`` cycles.  Lines interleave across channels
by address (the standard HBM mapping), so sequential streams spread load.
The returned completion time is ``max(now, channel_free) + service +
latency`` — a classic M/D/1-style back-of-envelope that reproduces
bandwidth saturation without a full DRAM timing model (the paper's effects
live in the SM, not DRAM).

The default of one channel matches the paper-reproduction configuration;
``MemoryConfig.dram_channels`` scales aggregate bandwidth for larger
multi-SM studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMStats:
    accesses: int = 0
    busy_cycles: int = 0


class DRAM:
    def __init__(
        self,
        latency: int,
        bytes_per_cycle: int,
        line_bytes: int,
        num_channels: int = 1,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be > 0")
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.latency = latency
        self.service_cycles = max(1, line_bytes // bytes_per_cycle)
        self.num_channels = num_channels
        self.stats = DRAMStats()
        self._channel_free = [0] * num_channels

    def begin_run(self) -> None:
        """Free all channels for a new kernel launch (stats untouched)."""
        for i in range(self.num_channels):
            self._channel_free[i] = 0

    def access(self, now: int, line_address: int = 0) -> int:
        """Issue one line transaction; returns its completion cycle."""
        channel = line_address % self.num_channels
        start = max(now, self._channel_free[channel])
        self._channel_free[channel] = start + self.service_cycles
        self.stats.accesses += 1
        self.stats.busy_cycles += self.service_cycles
        return start + self.service_cycles + self.latency

    def utilization(self, elapsed_cycles: int) -> float:
        """Aggregate channel utilization over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.stats.busy_cycles / (elapsed_cycles * self.num_channels)
