"""Set-associative cache with MSHR merging.

A deliberately lean timing model: tag lookup is immediate (the latency is
charged by the caller as the level's hit latency), misses allocate an MSHR
entry keyed by line address so that concurrent misses to the same line
merge, and fills install the line with LRU replacement.

The model tracks *when* a line's fill completes so that a request arriving
while its line is still in flight is merged and inherits the in-flight
completion time rather than issuing a duplicate request downstream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level (used for both L1 slices and the shared L2)."""

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        hit_latency: int,
        mshrs: int,
        name: str = "cache",
    ) -> None:
        if size_bytes % (line_bytes * ways):
            raise ValueError("size must be divisible by line_bytes * ways")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        self.hit_latency = hit_latency
        self.max_mshrs = mshrs
        self.stats = CacheStats()
        # set index -> OrderedDict(line_address -> True), LRU at front
        self._sets: Dict[int, OrderedDict] = {}
        # line address -> cycle the in-flight fill completes
        self._mshr: Dict[int, int] = {}
        # earliest in-flight completion; guards the drain scan
        self._mshr_min = 0

    # -- queries -------------------------------------------------------------

    def set_index(self, line_address: int) -> int:
        return line_address % self.num_sets

    def contains(self, line_address: int) -> bool:
        s = self._sets.get(self.set_index(line_address))
        return s is not None and line_address in s

    def mshrs_free(self, now: int) -> int:
        self._drain_mshrs(now)
        return self.max_mshrs - len(self._mshr)

    # -- access --------------------------------------------------------------

    def probe(self, line_address: int, now: int) -> Tuple[bool, Optional[int]]:
        """Look up a line without side effects beyond LRU update.

        Returns ``(hit, inflight_completion)``: ``hit`` is True when the line
        is resident; ``inflight_completion`` is the fill-completion cycle when
        the line is currently being fetched (an MSHR merge opportunity).
        """
        self._drain_mshrs(now)
        idx = self.set_index(line_address)
        s = self._sets.get(idx)
        if s is not None and line_address in s:
            s.move_to_end(line_address)
            return True, None
        return False, self._mshr.get(line_address)

    def record_hit(self) -> None:
        self.stats.hits += 1

    def record_merge(self) -> None:
        self.stats.misses += 1
        self.stats.mshr_merges += 1

    def allocate_miss(self, line_address: int, fill_cycle: int) -> None:
        """Register a miss whose fill will complete at ``fill_cycle``."""
        self.stats.misses += 1
        if not self._mshr or fill_cycle < self._mshr_min:
            self._mshr_min = fill_cycle
        self._mshr[line_address] = fill_cycle

    def install(self, line_address: int) -> None:
        """Install a line (on fill completion)."""
        idx = self.set_index(line_address)
        # get-or-create: setdefault() would allocate a fresh OrderedDict on
        # every install, even when the set already exists (cycle-hot path).
        s = self._sets.get(idx)
        if s is None:
            s = self._sets[idx] = OrderedDict()  # simcheck: hot-ok -- one OrderedDict per cache set, on first touch only
        if line_address in s:
            s.move_to_end(line_address)
            return
        if len(s) >= self.ways:
            s.popitem(last=False)
            self.stats.evictions += 1
        s[line_address] = True

    def _drain_mshrs(self, now: int) -> None:
        """Retire completed fills: install their lines and free the MSHRs."""
        if not self._mshr or now < self._mshr_min:
            return
        done = [addr for addr, t in self._mshr.items() if t <= now]  # simcheck: hot-ok -- only reached when a fill completed (guarded by _mshr_min); snapshot needed before deletion
        for addr in done:
            del self._mshr[addr]
            self.install(addr)
        if self._mshr:
            self._mshr_min = min(self._mshr.values())

    def flush(self) -> None:
        """Drop all resident lines and in-flight fills (test helper)."""
        self._sets.clear()
        self._mshr.clear()

    def begin_run(self) -> None:
        """Cold-start the cache for a new kernel launch.

        Back-to-back ``GPU.run`` calls model independent launches, so a
        second kernel must see exactly the state a fresh GPU would: no
        resident lines and, critically, no in-flight MSHR fills left over
        from the previous kernel's trailing stores (a load completing
        "mid-run" from a stale fill would shift timing and LRU state).
        Cumulative ``stats`` are untouched — they partition across runs.
        """
        self._sets.clear()
        self._mshr.clear()
        self._mshr_min = 0
