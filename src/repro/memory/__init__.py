"""Simplified GPU memory hierarchy: L1 slices, shared L2, HBM, scratchpad."""

from .cache import Cache, CacheStats
from .coalescer import Coalescer
from .dram import DRAM, DRAMStats
from .request import AccessResult, MemoryRequest
from .shared_memory import SharedMemory, SharedMemoryStats
from .subsystem import MemorySubsystem, build_dram, build_l2

__all__ = [
    "Cache",
    "CacheStats",
    "Coalescer",
    "DRAM",
    "DRAMStats",
    "AccessResult",
    "MemoryRequest",
    "SharedMemory",
    "SharedMemoryStats",
    "MemorySubsystem",
    "build_dram",
    "build_l2",
]
