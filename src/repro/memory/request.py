"""Memory request records exchanged between pipeline and memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryRequest:
    """One coalesced memory transaction (one cache line) from a warp."""

    line_address: int
    is_store: bool = False

    def __post_init__(self) -> None:
        if self.line_address < 0:
            raise ValueError("line_address must be non-negative")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of sending a warp's transactions into the hierarchy."""

    completion_cycle: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int

    @property
    def transactions(self) -> int:
        return self.l1_hits + self.l1_misses
