"""Per-SM memory subsystem: coalescer → L1 → L2 → DRAM, plus shared memory.

Each SM owns an L1 slice and a shared-memory scratchpad; the L2 and DRAM are
chip-level and shared by all SMs (pass the same instances to every
subsystem).  The subsystem converts a warp memory instruction into a single
completion cycle, which the LDST execution unit uses as the writeback time.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..config import GPUConfig, MemoryConfig
from ..isa import Instruction, MemRef
from .cache import Cache
from .coalescer import Coalescer
from .dram import DRAM
from .request import AccessResult
from .shared_memory import SharedMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer


def build_l2(mem: MemoryConfig) -> Cache:
    """The chip-level L2; share one instance across all SM subsystems."""
    return Cache(
        size_bytes=mem.l2_size_bytes,
        line_bytes=mem.l2_line_bytes,
        ways=mem.l2_ways,
        hit_latency=mem.l2_hit_latency,
        mshrs=mem.l2_mshrs,
        name="L2",
    )


def build_dram(mem: MemoryConfig) -> DRAM:
    return DRAM(
        latency=mem.dram_latency,
        bytes_per_cycle=mem.dram_bytes_per_cycle,
        line_bytes=mem.l2_line_bytes,
        num_channels=mem.dram_channels,
    )


class MemorySubsystem:
    """The memory path attached to one SM."""

    def __init__(
        self,
        config: GPUConfig,
        l2: Optional[Cache] = None,
        dram: Optional[DRAM] = None,
    ) -> None:
        mem = config.memory
        self.config = config
        self.coalescer = Coalescer(mem.l1_line_bytes)
        self.l1 = Cache(
            size_bytes=mem.l1_size_bytes,
            line_bytes=mem.l1_line_bytes,
            ways=mem.l1_ways,
            hit_latency=mem.l1_hit_latency,
            mshrs=mem.l1_mshrs,
            name="L1",
        )
        self.l2 = l2 if l2 is not None else build_l2(mem)  # simcheck: persistent -- chip-level shared instance; GPU._run resets it once per launch
        self.dram = dram if dram is not None else build_dram(mem)  # simcheck: persistent -- chip-level shared instance; GPU._run resets it once per launch
        self.shared = SharedMemory(mem.shared_mem_banks)
        #: L1←L2 ingest throughput: line transactions accepted per cycle.
        self._l1_port_free = 0
        # event tracing (repro.obs); attached by the owning SM when active
        self.tracer: Optional["Tracer"] = None  # simcheck: persistent -- wiring installed once per process, survives runs
        self._sm_id = -1  # simcheck: persistent -- wiring installed once per process, survives runs

    def attach_tracer(self, tracer: "Tracer", sm_id: int) -> None:
        """Attach the event tracer; accesses emit ``mem`` span events."""
        self.tracer = tracer
        self._sm_id = sm_id

    def begin_run(self) -> None:
        """Reset per-launch transient state (the L1 side of the SM).

        The shared L2/DRAM are reset once per launch by the GPU, not per
        subsystem — several SMs share those instances.
        """
        self._l1_port_free = 0
        self.l1.begin_run()

    # -- global memory ---------------------------------------------------------

    def access_global(self, mem: MemRef, now: int) -> AccessResult:
        """Send one warp's coalesced global transactions into the hierarchy."""
        requests = self.coalescer.expand(mem)
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        completion = now
        for i, req in enumerate(requests):
            # One L1 tag port: back-to-back transactions of the same warp
            # instruction serialize one per cycle.
            t_issue = max(now + i, self._l1_port_free)
            self._l1_port_free = t_issue + 1
            hit, inflight = self.l1.probe(req.line_address, t_issue)
            if hit:
                self.l1.record_hit()
                l1_hits += 1
                t_done = t_issue + self.l1.hit_latency
            elif inflight is not None:
                self.l1.record_merge()
                l1_misses += 1
                t_done = max(inflight, t_issue + self.l1.hit_latency)
            else:
                l1_misses += 1
                t_done, was_l2_hit = self._access_l2(req.line_address, t_issue)
                if was_l2_hit:
                    l2_hits += 1
                else:
                    l2_misses += 1
                self.l1.allocate_miss(req.line_address, t_done)
            completion = max(completion, t_done)
        return AccessResult(  # simcheck: hot-ok -- one result record per warp memory instruction, not per cycle
            completion_cycle=completion,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l2_hits=l2_hits,
            l2_misses=l2_misses,
        )

    def _access_l2(self, line_address: int, now: int) -> tuple[int, bool]:
        l2 = self.l2
        t_at_l2 = now + self.l1.hit_latency  # L1 miss detection + NoC hop
        hit, inflight = l2.probe(line_address, t_at_l2)
        if hit:
            l2.record_hit()
            return t_at_l2 + l2.hit_latency, True
        if inflight is not None:
            l2.record_merge()
            return max(inflight, t_at_l2 + l2.hit_latency), False
        t_done = self.dram.access(t_at_l2, line_address) + l2.hit_latency
        l2.allocate_miss(line_address, t_done)
        return t_done, False

    # -- shared memory -----------------------------------------------------------

    def access_shared(self, now: int, conflict_degree: int = 1) -> int:
        return self.shared.access(now, conflict_degree)

    # -- instruction-level entry point --------------------------------------------

    def access(self, inst: Instruction, now: int, shared_conflict_degree: int = 1) -> int:
        """Completion cycle for a memory instruction's data."""
        if inst.opcode.is_global_memory:
            assert inst.mem is not None
            result = self.access_global(inst.mem, now)
            done = result.completion_cycle
            if self.tracer is not None:
                self.tracer.mem_access(
                    now,
                    self._sm_id,
                    "global",
                    max(1, done - now),
                    l1_hits=result.l1_hits,
                    l1_misses=result.l1_misses,
                )
            return done
        if inst.opcode.is_shared_memory:
            done = self.access_shared(now, shared_conflict_degree)
            if self.tracer is not None:
                self.tracer.mem_access(now, self._sm_id, "shared", max(1, done - now))
            return done
        raise ValueError(f"{inst.opcode.name} is not a memory instruction")
