"""71-point stats-digest grid for byte-identity verification.

Run on main, save digests; run again after the change; diff must be empty.
Not part of the commit.
"""
import json
import sys
from pathlib import Path

from repro.config import volta_v100
from repro.experiments.designs import get_design
from repro.gpu import simulate
from repro.obs import stats_digest
from repro.workloads import fma_microbenchmark, get_kernel

APPS = ["cg-lou", "pb-sgemm", "tpcU-q8", "rod-bp", "ply-2Dcon"]
DESIGNS = [
    "baseline", "rba", "srr", "shuffle", "shuffle_rba", "srr_rba",
    "fully_connected", "fc_rba", "bank_stealing", "two_level", "cu1",
    "rba_4banks", "rba_lat5",
]

points = []
for app in APPS:
    for design in DESIGNS:
        points.append((f"{app}:{design}", get_design(design), app, 1, False))

# extras: multi-SM, bank-mapping variants, stall attribution, sanitize,
# timeline, microbench
points.append(("cg-lou:baseline:sms4", get_design("baseline"), "cg-lou", 4, False))
points.append(
    ("tpcU-q8:baseline-mod", volta_v100().replace(bank_mapping="mod"), "tpcU-q8", 1, False)
)
points.append(
    (
        "tpcU-q8:baseline-scrambled",
        volta_v100().replace(bank_mapping="scrambled"),
        "tpcU-q8",
        1,
        False,
    )
)
points.append(
    ("cg-lou:rba:attr", get_design("rba").replace(stall_attribution=True), "cg-lou", 1, False)
)
points.append(
    ("pb-sgemm:srr:timeline", get_design("srr"), "pb-sgemm", 1, True)
)
points.append(("fma-unbalanced:baseline", get_design("baseline"), None, 1, False))

assert len(points) == 71, len(points)

digests = {}
for i, (label, config, app, num_sms, timeline) in enumerate(points):
    kernel = fma_microbenchmark("unbalanced") if app is None else get_kernel(app)
    stats = simulate(kernel, config, num_sms=num_sms, collect_timeline=timeline)
    digests[label] = stats_digest(stats.to_payload())
    print(f"[{i + 1}/71] {label} {digests[label]}", flush=True)

out = Path(sys.argv[1])
out.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
print(f"wrote {out}")
