"""Bench: regenerate Fig. 18 — partitioned-vs-fully-connected SM scaling."""

from repro.experiments import fig18_sm_scaling as fig18

from conftest import full_run, run_once


def test_fig18_sm_scaling(benchmark):
    kwargs = {}
    if not full_run():
        kwargs = dict(apps=("tpcU-q8", "pb-sgemm"), num_ctas=24)
    res = run_once(benchmark, fig18.run, **kwargs)
    print()
    print(fig18.format_result(res))
    base_ratio = res.overhead_ratio("baseline")
    ours_ratio = res.overhead_ratio("shuffle_rba")
    # Paper: 100/80 = 1.25x partitioned SMs needed at baseline; 84/80 =
    # 1.05x with the techniques.  Our techniques must close the gap.
    assert base_ratio > 1.0
    assert ours_ratio < base_ratio
