"""Bench: regenerate Sec. IV-B3 — 4-entry vs 16-entry Shuffle hash table."""

from repro.experiments import hash_table_size

from conftest import run_once


def test_hash_table_size(benchmark):
    res = run_once(benchmark, hash_table_size.run)
    print()
    print(hash_table_size.format_result(res))
    # Paper: 16-entry table within 2% of the 4-entry table everywhere.
    assert res.max_gap_percent() < 5.0
