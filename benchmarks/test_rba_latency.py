"""Bench: regenerate Sec. VI-B4 — RBA score-update latency sweep."""

from repro.experiments import rba_latency

from conftest import run_once


def test_rba_latency(benchmark):
    res = run_once(benchmark, rba_latency.run)
    print()
    print(rba_latency.format_result(res))
    # Paper: < 0.1% average loss over 0..20 cycles.  Our synthetic traces
    # oscillate faster than real apps, so we assert the surviving
    # qualitative claims (see the module docstring / EXPERIMENTS.md):
    # degradation is graceful and stale RBA never falls meaningfully
    # below the GTO baseline.
    assert res.average_speedup(0) > 1.10
    assert res.average_speedup(5) > 1.03
    assert res.average_speedup(20) > 0.97
    # monotone-ish decay: small latencies keep most of the gain
    assert res.average_speedup(1) > res.average_speedup(20) - 0.02
