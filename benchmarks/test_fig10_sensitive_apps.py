"""Bench: regenerate Fig. 10 — design summary on sensitive apps."""

from repro.experiments import fig10_sensitive as fig10

from conftest import run_once


def test_fig10_sensitive_apps(benchmark):
    res = run_once(benchmark, fig10.run)
    print()
    print(fig10.format_result(res))
    avg = res.averages()
    # Paper anchors: RBA +11.1%, bank stealing <1%, 4CU +4.1%, combined +19.3%.
    assert avg["rba"] > 1.08
    assert abs(avg["bank_stealing"] - 1.0) < 0.03
    assert 1.0 < avg["cu4"] < avg["rba"]
    assert avg["shuffle_rba"] > avg["rba"]
