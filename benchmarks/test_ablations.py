"""Bench: ablation studies for the modelling choices DESIGN.md calls out."""

from repro.experiments import ablation_bank_mapping, ablation_baseline_scheduler

from conftest import run_once


def test_ablation_bank_mapping(benchmark):
    res = run_once(benchmark, ablation_bank_mapping.run)
    print()
    print(ablation_bank_mapping.format_result(res))
    # RBA's gain must survive under every mapping policy.
    for mapping in ablation_bank_mapping.MAPPINGS:
        assert res.rba_speedup(mapping) > 1.0


def test_ablation_baseline_scheduler(benchmark):
    res = run_once(benchmark, ablation_baseline_scheduler.run)
    print()
    print(ablation_baseline_scheduler.format_result(res))
    # Bank-aware selection beats the age-order baselines on average...
    assert res.rba_gain_over("gto") > 1.05
    assert res.rba_gain_over("lrr") > 1.0
    # ...and is the robust policy: generic interleaving (LRR/two-level)
    # falls below GTO somewhere, RBA does not (within noise).
    assert res.min_speedup("lrr") < 0.99
    assert res.min_speedup("rba") > 0.985
