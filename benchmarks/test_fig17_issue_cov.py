"""Bench: regenerate Fig. 17 — CoV of per-sub-core instruction issue."""

from repro.experiments import fig17_issue_cov as fig17

from conftest import run_once, tpch_queries


def test_fig17_issue_cov(benchmark):
    res = run_once(benchmark, fig17.run, queries=tpch_queries(compressed=False))
    print()
    print(fig17.format_result(res))
    avg = res.averages()
    # Paper: baseline 0.80 average, SRR 0.11; q8 worst at 1.01.
    assert 0.55 < avg["baseline"] < 1.1
    assert avg["srr"] < 0.2
    assert avg["shuffle"] < avg["baseline"]
    worst_app, worst = res.worst_baseline()
    assert worst_app == "tpcU-q8"
    assert worst > 0.9
