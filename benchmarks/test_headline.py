"""Bench: the abstract's headline claims (avg speedup, captured fraction)."""

from repro.experiments import headline

from conftest import registry_apps, run_once


def test_headline_numbers(benchmark):
    res = run_once(benchmark, headline.run, apps=registry_apps())
    print()
    print(headline.format_result(res))
    # Paper: +11.2% average, 81% of the fully-connected gain, +19.3% on
    # the sensitive subset.  The fast-mode subset over-samples sensitive
    # apps (where our RBA beats the fully-connected SM), so the captured
    # fraction can exceed 1 by more than the full-registry run's 1.09;
    # the claim under test is that the combined design recovers most of
    # the partitioning loss.
    assert res.combined_average > 1.05
    assert res.captured_fraction > 0.5
    assert res.sensitive_average > res.combined_average
