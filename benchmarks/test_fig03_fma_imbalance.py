"""Bench: regenerate Fig. 3 — in-silicon FMA imbalance microbenchmark."""

from repro.experiments import fig03_fma_imbalance as fig03

from conftest import full_run, run_once


def test_fig03_fma_imbalance(benchmark):
    fmas = 4096 if full_run() else 512
    res = run_once(benchmark, fig03.run, fmas=fmas)
    print()
    print(fig03.format_result(res))
    # Paper: A100 3.9x on unbalanced; Kepler flat; balanced == baseline.
    assert 3.0 < res.unbalanced_slowdown("ampere") < 4.5
    assert 3.0 < res.unbalanced_slowdown("volta") < 4.5
    assert res.unbalanced_slowdown("kepler") < 1.15
    assert res.normalized()["ampere"]["balanced"] < 1.1
