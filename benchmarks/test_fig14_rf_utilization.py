"""Bench: regenerate Fig. 14 — RF reads/cycle utilization traces."""

from repro.experiments import fig14_rf_utilization as fig14

from conftest import run_once


def test_fig14_rf_utilization(benchmark):
    res = run_once(benchmark, fig14.run)
    print()
    print(fig14.format_result(res))
    # Paper: RBA raises rod-srad's average reads/cycle above both the
    # baseline and the fully-connected SM (22.2 / 27.1 / 23.4).
    srad_base = res.average_reads("rod-srad", "baseline")
    srad_rba = res.average_reads("rod-srad", "rba")
    assert srad_rba > srad_base
    assert srad_rba > res.average_reads("rod-srad", "fully_connected") * 0.95
    # RBA shrinks the low-utilization tail on pb-mriq.
    assert res.low_utilization_cycles("pb-mriq", "rba") < res.low_utilization_cycles(
        "pb-mriq", "baseline"
    )
