"""Bench: regenerate Fig. 12 — CU scaling vs RBA."""

from repro.experiments import fig12_cu_scaling as fig12

from conftest import run_once


def test_fig12_cu_scaling(benchmark):
    res = run_once(benchmark, fig12.run)
    print()
    print(fig12.format_result(res))
    avg = res.averages()
    # Paper: +4.1 / +7.1 / +9.6% for 4/8/16 CUs; RBA +11.9% beats 2x CUs.
    assert 1.0 < avg["cu4"] < avg["cu8"]
    assert avg["rba"] > avg["cu4"]
    # cuGraph: RBA beats fully-connected on every app (paper: by 15%+).
    gaps = res.cugraph_rba_vs_fc()
    assert gaps and all(g > 0 for _, g in gaps)
