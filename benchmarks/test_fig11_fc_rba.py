"""Bench: regenerate Fig. 11 — RBA on the fully-connected SM."""

from repro.experiments import fig11_fc_rba as fig11

from conftest import run_once


def test_fig11_fc_rba(benchmark):
    res = run_once(benchmark, fig11.run)
    print()
    print(fig11.format_result(res))
    g = res.geomeans()
    # Paper: FC alone +6.1% geomean in this population; FC+RBA +19.6%.
    assert g["fc_rba"] > g["fully_connected"]
    assert g["fully_connected"] > 1.0
    assert len(res.population()) >= len(res.rows) // 2
