"""Bench: regenerate Fig. 13 — area/power of CU scaling vs RBA."""

from repro.experiments import fig13_area_power as fig13

from conftest import run_once


def test_fig13_area_power(benchmark):
    res = run_once(benchmark, fig13.run)
    print()
    print(fig13.format_result(res))
    # Paper: 4 CUs +27% area / +60% power; RBA ~1% both.
    assert 20 < res.overhead("4cu", "area") < 35
    assert 45 < res.overhead("4cu", "power") < 75
    assert res.overhead("2cu+rba", "area") < 1.0
    assert res.overhead("2cu+rba", "power") < 1.0
