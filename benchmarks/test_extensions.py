"""Bench: extension studies beyond the paper's evaluation."""

from repro.experiments import subcore_granularity, work_stealing_study

from conftest import run_once


def test_subcore_granularity(benchmark):
    res = run_once(benchmark, subcore_granularity.run)
    print()
    print(subcore_granularity.format_result(res))
    # The unbalanced-FMA penalty must grow monotonically with granularity.
    unb = res.slowdown_vs_monolithic("fma-unbalanced")
    assert unb == sorted(unb)
    assert unb[-1] > 2.5


def test_work_stealing_study(benchmark):
    res = run_once(benchmark, work_stealing_study.run)
    print()
    print(work_stealing_study.format_result(res))
    # Free migration approaches SRR; cost erodes it; SRR needs no migration.
    free = res.mean_speedup("steal_lat0")
    costly = res.mean_speedup(f"steal_lat{max(work_stealing_study.MIGRATION_LATENCIES)}")
    assert free > costly
    assert free > res.mean_speedup("srr") * 0.8


def test_effect4_concurrent_kernels(benchmark):
    from repro.experiments import effect4_concurrent

    res = run_once(benchmark, effect4_concurrent.run)
    print()
    print(effect4_concurrent.format_result(res))
    assert res.efficiency("partitioned") > 1.0
    assert abs(res.fragmentation_loss()) < 0.15
