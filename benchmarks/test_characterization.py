"""Bench: workload characterization + analytic bounds for key apps.

Not a paper figure — regenerates the triage the paper's Secs. III/VI
narrate (which app is imbalance-bound / read-operand-bound / memory-bound)
and the roofline context for the scheduling results.
"""

from repro.metrics import ipc_bounds
from repro.workloads import characterization_table, characterize, get_kernel
from repro.config import volta_v100

from conftest import run_once

APPS = (
    "tpcU-q8", "tpcC-q9",          # issue imbalance
    "cg-lou", "pb-mriq", "rod-srad",  # read-operand limited
    "pb-stencil", "ply-atax",      # memory bound
    "cutlass-4096", "db-conv-tr",  # tensor / balanced
)


def _characterize_all():
    return {app: get_kernel(app) for app in APPS}


def test_characterization_triage(benchmark):
    kernels = run_once(benchmark, _characterize_all)
    print()
    print(characterization_table(kernels))
    cfg = volta_v100()
    print()
    for app, k in kernels.items():
        b = ipc_bounds(k, cfg)
        print(f"{app:14s} IPC ceiling {b.ipc:5.2f} (binding: {b.binding})")
    assert characterize(kernels["tpcU-q8"]).dominant_effect() == "issue-imbalance"
    assert characterize(kernels["cg-lou"]).dominant_effect() == "read-operand-limited"
    assert characterize(kernels["pb-stencil"]).dominant_effect() == "memory-bound"
