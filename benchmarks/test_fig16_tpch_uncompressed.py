"""Bench: regenerate Fig. 16 — uncompressed TPC-H per-query speedups."""

from repro.experiments import fig16_tpch_uncompressed as fig16

from conftest import run_once, tpch_queries


def test_fig16_tpch_uncompressed(benchmark):
    res = run_once(benchmark, fig16.run, queries=tpch_queries(compressed=False))
    print()
    print(fig16.format_result(res))
    avg = res.averages()
    # Paper: SRR +17.5%, Shuffle +13.9%; compressed flavour gains more.
    assert avg["srr"] > 1.08
    assert avg["srr"] >= avg["shuffle"] - 0.02
    assert fig16.q8_speedup(res) > 1.12  # paper: +30.8% on q8
