"""Bench: regenerate Sec. V — collector-unit count validation."""

from repro.experiments import cu_validation

from conftest import full_run, run_once


def test_cu_validation(benchmark):
    insts = 512 if full_run() else 192
    res = run_once(benchmark, cu_validation.run, insts=insts)
    print()
    print(cu_validation.format_result(res))
    # Paper: 2 CUs/sub-core yields the lowest MAE (16.2%; worst 43%).
    assert res.best_cu_count() == 2
    maes = res.mae()
    assert maes[2] < 25.0
    assert maes[1] > maes[2] + 10.0
