"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one paper figure/table: it runs the experiment
harness once (``benchmark.pedantic`` with a single round — simulations are
deterministic, so repetition only measures the same work), prints the
figure's rows, and asserts the paper's qualitative shape.

By default the registry-wide figures run on a representative subset so the
whole suite finishes in minutes; set ``REPRO_FULL=1`` to sweep all 112
applications / 22 queries exactly as the paper does.

The benchmarks run through the experiment engine
(:mod:`repro.experiments.engine`): simulation points fan out over
``REPRO_WORKERS`` worker processes (default: all CPUs) and land in the
persistent disk cache, so a re-run after a no-op change is near-instant.
Set ``REPRO_CACHE_DIR`` to relocate the cache, or delete it to force
fresh simulations.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.engine import configure
from repro.workloads import app_names


@pytest.fixture(autouse=True, scope="session")
def _engine_setup():
    workers = int(os.environ.get("REPRO_WORKERS", "0") or 0) or (
        os.cpu_count() or 1
    )
    configure(workers=workers)
    yield


def full_run() -> bool:
    return os.environ.get("REPRO_FULL") == "1"


#: Representative cross-suite subset for the 112-app figures (fast mode).
SUBSET_APPS = [
    # imbalance-sensitive (TPC-H)
    "tpcU-q1", "tpcU-q8", "tpcU-q14", "tpcC-q4", "tpcC-q9",
    # register-file sensitive
    "cg-lou", "cg-bfs", "cg-pgrnk", "pb-mriq", "pb-sgemm",
    "rod-srad", "rod-lavaMD", "ply-2Dcon",
    # balanced / insensitive fillers
    "pb-stencil", "rod-nw", "rod-kmeans", "ply-atax", "ply-gemm",
    "db-conv-tr", "db-rnn-inf", "cutlass-4096", "cutlass-1024",
]


def registry_apps() -> list:
    return app_names() if full_run() else list(SUBSET_APPS)


def tpch_queries(compressed: bool) -> list:
    suite = "tpch-compressed" if compressed else "tpch-uncompressed"
    names = app_names(suite)
    if full_run():
        return names
    prefix = "tpcC-q" if compressed else "tpcU-q"
    picks = (1, 4, 8, 9, 14, 17, 21)
    return [f"{prefix}{q}" for q in picks]


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
