"""Bench: regenerate Fig. 1 — fully-connected SM speedup across the registry."""

from repro.experiments import fig01_partitioning as fig01

from conftest import registry_apps, run_once


def test_fig01_partitioning_loss(benchmark):
    res = run_once(benchmark, fig01.run, apps=registry_apps())
    print()
    print(fig01.format_result(res))
    # Paper: +13.2% average, with a large insensitive population.
    assert 1.05 < res.average < 1.30
    assert res.max_speedup > 1.15
    assert 0.2 < res.sensitive_fraction() < 0.9
