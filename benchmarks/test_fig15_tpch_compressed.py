"""Bench: regenerate Fig. 15 — compressed TPC-H per-query speedups."""

from repro.experiments import fig15_tpch_compressed as fig15

from conftest import run_once, tpch_queries


def test_fig15_tpch_compressed(benchmark):
    res = run_once(benchmark, fig15.run, queries=tpch_queries(compressed=True))
    print()
    print(fig15.format_result(res))
    avg = res.averages()
    # Paper: SRR +33.1%, Shuffle +27.4%; SRR best in all queries.
    assert avg["srr"] > 1.15
    assert avg["srr"] >= avg["shuffle"] - 0.02
    assert res.srr_wins() >= len(res.rows) - 2
    assert avg["rba"] < 1.10  # TPC-H is not read-operand limited
