"""Bench: regenerate Fig. 9 — Shuffle+RBA vs fully-connected, all apps."""

from repro.experiments import fig09_all_apps as fig09

from conftest import registry_apps, run_once


def test_fig09_all_apps(benchmark):
    res = run_once(benchmark, fig09.run, apps=registry_apps())
    print()
    print(fig09.format_result(res))
    avg = res.averages()
    # Paper: Shuffle+RBA +10.6%, within a few points of FC's +13.2%.
    assert avg["shuffle_rba"] > 1.05
    assert abs(res.combined_vs_fc_gap()) < 8.0
    assert len(res.apps_where_design_beats_fc()) >= 1
