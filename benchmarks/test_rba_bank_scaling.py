"""Bench: regenerate Sec. VI-B5 — RBA effectiveness vs bank count."""

from repro.experiments import rba_banks

from conftest import run_once


def test_rba_bank_scaling(benchmark):
    res = run_once(benchmark, rba_banks.run)
    print()
    print(rba_banks.format_result(res))
    # Paper: benefit shrinks from +19.3% to +15.4% when banks double.
    assert res.average("2banks") > 1.08
    assert res.average("4banks") < res.average("2banks")
    assert res.average("4banks") > 1.0
