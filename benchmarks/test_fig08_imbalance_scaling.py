"""Bench: regenerate Fig. 8 — assignment designs vs imbalance scale."""

from repro.experiments import fig08_imbalance_scaling as fig08

from conftest import full_run, run_once


def test_fig08_imbalance_scaling(benchmark):
    base_fmas = 128 if full_run() else 48
    res = run_once(benchmark, fig08.run, base_fmas=base_fmas)
    print()
    print(fig08.format_result(res))
    sp = res.speedup_over_rr()
    # SRR >= Shuffle >= RR at every point, gap widening with imbalance.
    for i in range(len(res.imbalances)):
        assert sp["srr"][i] >= sp["shuffle"][i] - 0.05
    assert sp["srr"][-1] > 2.0
    assert sp["shuffle"][-1] > 1.3
    assert sp["srr"][-1] - sp["shuffle"][-1] > 0.5
