"""Bench: Table II — the baseline configuration is what the paper states.

Not a timing experiment; asserts the configuration contract that every
other benchmark builds on, and times config construction as a trivial
benchmark so it participates in --benchmark-only runs.
"""

from repro.config import volta_v100

from conftest import run_once


def test_table2_baseline_config(benchmark):
    cfg = run_once(benchmark, volta_v100)
    print()
    print(cfg.describe())
    assert cfg.num_sms == 80
    assert cfg.subcores_per_sm == 4
    assert cfg.max_warps_per_sm == 64
    assert cfg.rf_banks_per_subcore == 2
    assert cfg.collector_units_per_subcore == 2
    assert cfg.scheduler == "gto"
    assert cfg.memory.shared_mem_banks == 32
    assert cfg.memory.l2_size_bytes == 6 * 1024 * 1024
